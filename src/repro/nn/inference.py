"""Graph-free fused inference kernels.

Every ``predict_proba`` call used to walk the reverse-mode autograd
machinery in :mod:`repro.nn.tensor` — one Python-level :class:`Tensor`
allocation per op, per timestep of the recurrent loops — even under
``no_grad()``.  For the attack workload (thousands of small candidate
batches) that Python overhead dominates the actual FLOPs.

This module provides pure-NumPy *fused* forward kernels that read weights
straight out of the trained ``Module`` parameters: a single fused gate
matmul per LSTM/GRU timestep over preallocated state buffers, conv-as-matmul
for the WCNN, and a NumPy softmax replicating the exact op sequence of
:func:`repro.nn.functional.softmax`.  Each kernel performs bit-for-bit the
same floating-point operations in the same order as the autograd path, so
fused and reference probabilities agree exactly (the parity tests assert
``<= 1e-12``; in practice the outputs are bitwise identical).

Model classes opt in through :func:`register_fused_kernel`; dispatch
happens in :meth:`repro.models.base.TextClassifier.predict_proba` whenever
no gradient is needed and scoring is deterministic.  The autograd forward
is kept untouched as the reference implementation — gradient-guided attacks
still use it for the gradient step, and ``fused_inference = False`` (or an
unregistered model class) falls back to it.

Layering: this module depends on nothing but NumPy.  Model modules import
it to register their kernels; it never imports ``repro.models``.
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

__all__ = [
    "register_fused_kernel",
    "fused_kernel_for",
    "register_stable_kernel",
    "stable_kernel_for",
    "stable_matmul_operand",
    "stable_dense_np",
    "softmax_np",
    "sigmoid_np",
    "dense_np",
    "conv1d_np",
    "max_over_time_np",
    "lstm_forward_np",
    "gru_forward_np",
    "rnn_forward_np",
]

# kernel signature: (model, token_ids (B, T) int, mask (B, T) bool) -> logits (B, C)
FusedKernel = Callable[[object, np.ndarray, np.ndarray], np.ndarray]

_REGISTRY: dict[type, FusedKernel] = {}
_STABLE_REGISTRY: dict[type, FusedKernel] = {}

M = TypeVar("M", bound=type)


def register_fused_kernel(model_cls: type, kernel: FusedKernel) -> None:
    """Register a graph-free forward for ``model_cls``.

    Lookup is by *exact* type, never by subclass: a subclass overriding
    ``forward_from_embeddings`` must not silently inherit a kernel that
    computes something else.  Subclasses that keep the forward unchanged
    can re-register the parent's kernel explicitly.
    """
    _REGISTRY[model_cls] = kernel


def fused_kernel_for(model: object) -> FusedKernel | None:
    """The registered kernel for ``type(model)``, or None (reference path)."""
    return _REGISTRY.get(type(model))


def register_stable_kernel(model_cls: type, kernel: FusedKernel) -> None:
    """Register a *composition-stable* forward for ``model_cls``.

    A stable kernel guarantees a stronger property than the fused ones:
    every output row is bitwise independent of which other rows share the
    batch.  The scoring service depends on this — it merges `_score_batch`
    requests from many concurrent document attacks into one large GEMM,
    and the merged composition varies with timing, so only row-stable
    kernels keep service-backed runs deterministic across worker counts.

    Same exact-type lookup rule as :func:`register_fused_kernel`.
    """
    _STABLE_REGISTRY[model_cls] = kernel


def stable_kernel_for(model: object) -> FusedKernel | None:
    """The registered composition-stable kernel for ``type(model)``, or None."""
    return _STABLE_REGISTRY.get(type(model))


# ---------------------------------------------------------------------------
# primitives — each replicates the autograd op sequence exactly
# ---------------------------------------------------------------------------

def softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """``softmax`` with the exact op order of :func:`repro.nn.functional.softmax`.

    That implementation computes ``exp(shifted - log(sum(exp(shifted))))``
    with ``shifted = x - max(x)``; reproducing the same sequence keeps the
    fused probabilities bitwise equal to the reference ones.
    """
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return np.exp(shifted - np.log(e.sum(axis=axis, keepdims=True)))


def sigmoid_np(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``Tensor.sigmoid`` semantics: ``1 / (1 + exp(-clip(x, -60, 60)))``."""
    z = np.clip(x, -60.0, 60.0)
    if out is None:
        return 1.0 / (1.0 + np.exp(-z))
    np.negative(z, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.divide(1.0, out, out=out)
    return out


def dense_np(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    """Affine head ``x W^T + b`` on raw arrays."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def conv1d_np(
    emb: np.ndarray, weight: np.ndarray, bias: np.ndarray, kernel_size: int, stride: int = 1
) -> np.ndarray:
    """Conv-as-matmul over ``(B, T, D)``: im2col + one 2-D GEMM.

    Gathers the same ``(B, n_win, h*D)`` windows as
    :meth:`repro.nn.layers.Conv1d.forward` but collapses the batch and
    window axes into a single 2-D GEMM (a 3-D ``matmul`` degrades to ``B``
    small per-document GEMMs).  The per-output-element dot products run
    over the identical ``h*D`` contraction in the same order, so the
    result stays bitwise equal to the autograd path.
    """
    batch, seq_len, dim = emb.shape
    n_filt = weight.shape[0]
    starts = np.arange(0, seq_len - kernel_size + 1, stride)
    n_win = len(starts)
    win_idx = starts[:, None] + np.arange(kernel_size)[None, :]
    flat = emb[:, win_idx, :].reshape(batch * n_win, kernel_size * dim)
    return (flat @ weight.T).reshape(batch, n_win, n_filt) + bias


def max_over_time_np(feats: np.ndarray, window_mask: np.ndarray, neg: float = -1e30) -> np.ndarray:
    """Masked max-over-time pooling, matching :class:`repro.nn.layers.MaxOverTime`."""
    penalty = np.where(np.asarray(window_mask, dtype=bool), 0.0, neg)[:, :, None]
    return (feats + penalty).max(axis=1)


def lstm_forward_np(
    emb: np.ndarray,
    mask: np.ndarray | None,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray | None = None,
    c0: np.ndarray | None = None,
    state_seq: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused LSTM recurrence over ``(B, T, D)``; returns ``(h, c)`` of ``(B, H)``.

    One fused gate matmul per timestep (all input projections precomputed in
    a single batched GEMM), state in preallocated buffers.  The arithmetic
    mirrors :meth:`repro.nn.rnn.LSTM.forward` operation for operation:
    ``gates = (x_proj_t + h W_h^T) + b``, sigmoid/tanh splits, masked state
    carry-through via ``np.where``.

    ``h0``/``c0`` seed the recurrence from a cached prefix state instead of
    zeros (the recurrence is causal, so restarting at timestep ``p`` with the
    state after ``p`` steps is exact).  ``state_seq``, when given, is a pair
    of preallocated ``(B, T + 1, H)`` arrays that receive the state after
    every step — index 0 holds the initial state — which is what the delta
    scorer caches for a base document.
    """
    batch, seq_len, dim = emb.shape
    hid = w_h.shape[1]
    h = np.zeros((batch, hid)) if h0 is None else np.array(h0, dtype=float)
    c = np.zeros((batch, hid)) if c0 is None else np.array(c0, dtype=float)
    if state_seq is not None:
        h_seq, c_seq = state_seq
        h_seq[:, 0] = h
        c_seq[:, 0] = c
    wx_t = w_x.T
    wh_t = w_h.T
    x_proj = (emb.reshape(batch * seq_len, dim) @ wx_t).reshape(batch, seq_len, 4 * hid)
    gates = np.empty((batch, 4 * hid))
    for t in range(seq_len):
        np.matmul(h, wh_t, out=gates)
        gates += x_proj[:, t, :]
        gates += bias
        i = sigmoid_np(gates[:, :hid])
        f = sigmoid_np(gates[:, hid : 2 * hid])
        g = np.tanh(gates[:, 2 * hid : 3 * hid])
        o = sigmoid_np(gates[:, 3 * hid :])
        c_new = f * c + i * g
        h_new = o * np.tanh(c_new)
        if mask is not None:
            step = mask[:, t][:, None]
            c = np.where(step, c_new, c)
            h = np.where(step, h_new, h)
        else:
            c, h = c_new, h_new
        if state_seq is not None:
            h_seq[:, t + 1] = h
            c_seq[:, t + 1] = c
    return h, c


def gru_forward_np(
    emb: np.ndarray,
    mask: np.ndarray | None,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray | None = None,
    state_seq: np.ndarray | None = None,
) -> np.ndarray:
    """Fused GRU recurrence; returns the final hidden state ``(B, H)``.

    Mirrors :meth:`repro.nn.rnn.GRU.forward`: joint update/reset projection,
    reset-gated candidate, ``h = (1 - z) n + z h`` with masked carry-through.

    ``h0`` seeds the recurrence from a cached prefix state; ``state_seq`` is
    an optional preallocated ``(B, T + 1, H)`` array receiving the state
    after every step (index 0 = initial state).  See :func:`lstm_forward_np`.
    """
    batch, seq_len, dim = emb.shape
    hid = w_h.shape[1]
    h = np.zeros((batch, hid)) if h0 is None else np.array(h0, dtype=float)
    if state_seq is not None:
        state_seq[:, 0] = h
    wx_t = w_x.T
    wh_t = w_h.T
    x_proj = (emb.reshape(batch * seq_len, dim) @ wx_t).reshape(batch, seq_len, 3 * hid)
    hp = np.empty((batch, 3 * hid))
    for t in range(seq_len):
        xp = x_proj[:, t, :]
        np.matmul(h, wh_t, out=hp)
        z = sigmoid_np(xp[:, :hid] + hp[:, :hid] + bias[:hid])
        r = sigmoid_np(xp[:, hid : 2 * hid] + hp[:, hid : 2 * hid] + bias[hid : 2 * hid])
        n = np.tanh(xp[:, 2 * hid :] + r * hp[:, 2 * hid :] + bias[2 * hid :])
        h_new = (1.0 - z) * n + z * h
        if mask is not None:
            step = mask[:, t][:, None]
            h = np.where(step, h_new, h)
        else:
            h = h_new
        if state_seq is not None:
            state_seq[:, t + 1] = h
    return h


_RNN_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "tanh": np.tanh,
    "sigmoid": sigmoid_np,
    "relu": lambda x: np.maximum(x, 0.0),
}


# ---------------------------------------------------------------------------
# composition-stable primitives
#
# The fused kernels above replicate the autograd op order bitwise, but both
# paths inherit OpenBLAS's batch-shape sensitivity: `x @ w.T` with a
# transposed-*view* second operand picks different micro-kernels (and
# different K-blocking, hence different summation orders) depending on the
# row count M, so one document's row can change at the ulp level when the
# rows batched alongside it change.  Measured on this substrate:
#
# - transposed-view operands are row-unstable for small M (up to M≈18 for
#   some shapes), with no safe universal threshold;
# - a *contiguous* second operand is row-stable for every tested shape at
#   M >= 2 — except narrow outputs (N == num_classes == 2), which stay
#   unstable at almost every M;
# - gemv (M == 1, and matvec per class) uses its own K-blocking and never
#   matches gemm rows.
#
# The stable recipe is therefore: contiguous pre-transposed weights for the
# wide GEMMs (`stable_matmul_operand`), the narrow classification head as a
# per-class elementwise multiply + per-row pairwise `sum` (`stable_dense_np`,
# composition-invariant by construction), and callers must never dispatch a
# single-row batch (the scoring service pads to >= 2 rows).  Elementwise
# ops, softmax, gathers and masked reductions are all per-row already.
# ---------------------------------------------------------------------------

def stable_matmul_operand(model: object, name: str, weight: np.ndarray) -> np.ndarray:
    """``weight``, re-laid-out so ``weight.T`` is a C-contiguous GEMM operand.

    The fused recurrences and conv all compute ``x @ w.T``; handing them a
    transpose-contiguous ``w`` makes the BLAS see a contiguous NoTrans
    second operand, which is what makes their rows composition-stable for
    M >= 2.  The copy is cached on the model instance under ``name`` and
    invalidated when the source parameter array is rebound (e.g. by the
    shared-memory weight arena).
    """
    cache = model.__dict__.setdefault("_stable_operand_cache", {})
    entry = cache.get(name)
    if entry is None or entry[0] is not weight:
        contig = np.ascontiguousarray(weight.T).T
        cache[name] = (weight, contig)
        return contig
    return entry[1]


def stable_dense_np(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    """Affine head ``x W^T + b`` with composition-invariant rows.

    The (B, C) classification head is too narrow for any BLAS layout to be
    row-stable, so each output column is computed as an elementwise product
    reduced per row by NumPy's pairwise ``sum`` — the reduction order for a
    row depends only on that row, never on the batch composition.
    """
    cols = [(x * weight[j]).sum(axis=1) for j in range(weight.shape[0])]
    out = np.stack(cols, axis=1)
    if bias is not None:
        out = out + bias
    return out


def rnn_forward_np(
    emb: np.ndarray,
    mask: np.ndarray | None,
    w_x: np.ndarray,
    w_h: np.ndarray,
    bias: np.ndarray,
    activation: str = "tanh",
) -> np.ndarray:
    """Fused Elman recurrence matching :meth:`repro.nn.rnn.SimpleRNN.forward`."""
    phi = _RNN_ACTIVATIONS[activation]
    batch, seq_len, _ = emb.shape
    hid = w_h.shape[1]
    h = np.zeros((batch, hid))
    wx_t = w_x.T
    wh_t = w_h.T
    for t in range(seq_len):
        h_new = phi(emb[:, t, :] @ wx_t + h @ wh_t + bias)
        if mask is not None:
            step = mask[:, t][:, None]
            h = np.where(step, h_new, h)
        else:
            h = h_new
    return h
