"""First-order optimizers: SGD with momentum and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Essential for LSTM training stability.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
