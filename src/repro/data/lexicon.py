"""Synonym lexicons for the three synthetic tasks.

Each :class:`SynonymCluster` is a set of interchangeable words with a
*polarity* tag saying which class the cluster signals (or ``neutral``).
The clusters play three roles:

1. Corpus generation — signal slots in sentence templates are filled from
   class-consistent clusters (``repro.data.generators``).
2. Embedding geometry — cluster members are embedded as near-neighbors
   (``repro.text.embeddings.synonym_clustered_embeddings``), replicating the
   Paragram/word2vec neighborhoods the paper's candidate sets come from.
3. Attack candidate sets — word paraphrase candidates ``W_i`` are the other
   members of a word's cluster (``repro.attacks.paraphrase``).

Within a cluster the *first* word is the canonical, frequent form; later
words are rarer synonyms.  The generator samples them with a steep
frequency bias, so trained classifiers acquire much stronger weights for
canonical forms — which is precisely the asymmetry that synonym-substitution
attacks exploit on real models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SynonymCluster", "DomainLexicon", "sentiment_lexicon", "news_lexicon", "spam_lexicon"]

POS = "positive"
NEG = "negative"
NEUTRAL = "neutral"


@dataclass(frozen=True)
class SynonymCluster:
    """A set of interchangeable words with a class-polarity tag.

    ``polarity`` is ``"positive"`` (signals class 1), ``"negative"``
    (signals class 0) or ``"neutral"``.
    """

    words: tuple[str, ...]
    polarity: str = NEUTRAL

    def __post_init__(self) -> None:
        if len(self.words) < 1:
            raise ValueError("a cluster needs at least one word")
        if self.polarity not in (POS, NEG, NEUTRAL):
            raise ValueError(f"unknown polarity {self.polarity!r}")
        if len(set(self.words)) != len(self.words):
            raise ValueError(f"duplicate words in cluster {self.words}")

    @property
    def canonical(self) -> str:
        return self.words[0]

    def alternatives(self, word: str) -> tuple[str, ...]:
        """The other members of the cluster (paraphrase candidates)."""
        if word not in self.words:
            raise KeyError(f"{word!r} not in cluster {self.words}")
        return tuple(w for w in self.words if w != word)


@dataclass
class DomainLexicon:
    """All clusters of one task domain plus standalone function words."""

    name: str
    clusters: list[SynonymCluster]
    function_words: tuple[str, ...] = ()
    _by_word: dict[str, SynonymCluster] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for cluster in self.clusters:
            for w in cluster.words:
                if w in self._by_word:
                    raise ValueError(f"word {w!r} appears in multiple clusters of {self.name!r}")
                self._by_word[w] = cluster

    def cluster_of(self, word: str) -> SynonymCluster | None:
        """The cluster containing ``word``, or None."""
        return self._by_word.get(word)

    def synonyms(self, word: str) -> tuple[str, ...]:
        """Paraphrase candidates for ``word`` (empty if unclustered)."""
        cluster = self._by_word.get(word)
        return cluster.alternatives(word) if cluster else ()

    def clusters_by_polarity(self, polarity: str) -> list[SynonymCluster]:
        return [c for c in self.clusters if c.polarity == polarity]

    def all_words(self) -> list[str]:
        words = [w for c in self.clusters for w in c.words]
        words.extend(self.function_words)
        return words

    def word_cluster_lists(self) -> list[list[str]]:
        """Clusters as plain lists (input format for embedding generation)."""
        return [list(c.words) for c in self.clusters]


_COMMON_FUNCTION_WORDS = (
    "the", "a", "an", "is", "was", "were", "are", "and", "but", "or",
    "very", "so", "quite", "really", "of", "in", "at", "to", "it",
    "this", "that", "we", "i", "they", "he", "she", "with", "for",
    ".", ",", "!", "?",
)


def sentiment_lexicon() -> DomainLexicon:
    """Yelp-style restaurant-review sentiment lexicon (neg=0, pos=1)."""
    clusters = [
        # positive signal
        SynonymCluster(("great", "wonderful", "terrific", "superb", "fabulous", "fantastic", "marvelous"), POS),
        SynonymCluster(("delicious", "tasty", "flavorful", "scrumptious", "delectable", "savory", "appetizing"), POS),
        SynonymCluster(("friendly", "welcoming", "courteous", "warm", "hospitable", "gracious"), POS),
        SynonymCluster(("fast", "quick", "prompt", "speedy", "swift", "rapid"), POS),
        SynonymCluster(("fresh", "crisp", "garden-fresh", "unspoiled"), POS),
        SynonymCluster(("loved", "adored", "enjoyed", "relished", "savored", "cherished"), POS),
        SynonymCluster(("recommend", "suggest", "endorse", "advocate", "propose"), POS),
        SynonymCluster(("amazing", "astonishing", "incredible", "stunning2", "breathtaking", "remarkable"), POS),
        SynonymCluster(("cozy", "comfortable", "snug", "homey", "inviting"), POS),
        SynonymCluster(("perfect", "flawless", "ideal", "impeccable", "faultless"), POS),
        # negative signal
        SynonymCluster(("terrible", "horrible", "dreadful", "appalling", "horrendous", "ghastly", "frightful"), NEG),
        SynonymCluster(("bland", "tasteless", "flavorless", "insipid", "unseasoned"), NEG),
        SynonymCluster(("rude", "impolite", "disrespectful", "discourteous", "insolent", "uncivil"), NEG),
        SynonymCluster(("slow", "sluggish", "unhurried", "dawdling", "lethargic", "leisurely"), NEG),
        SynonymCluster(("stale", "spoiled", "rancid", "moldy", "rotten"), NEG),
        SynonymCluster(("hated", "despised", "detested", "loathed", "abhorred"), NEG),
        SynonymCluster(("avoid", "skip", "bypass", "shun", "dodge"), NEG),
        SynonymCluster(("awful", "atrocious", "abysmal", "dismal", "wretched", "lousy"), NEG),
        SynonymCluster(("dirty", "filthy", "grimy", "grubby", "squalid", "unclean"), NEG),
        SynonymCluster(("overpriced", "expensive", "costly", "pricey", "exorbitant", "steep"), NEG),
        # neutral nouns / verbs
        SynonymCluster(("food", "meal", "dish", "cuisine")),
        SynonymCluster(("service", "staff", "waiters")),
        SynonymCluster(("place", "restaurant", "spot", "venue")),
        SynonymCluster(("pizza", "pasta", "burger", "salad")),
        SynonymCluster(("dinner", "lunch", "brunch")),
        SynonymCluster(("atmosphere", "ambiance", "vibe")),
        SynonymCluster(("price", "cost", "bill")),
        SynonymCluster(("visited", "went", "stopped")),
        SynonymCluster(("ordered", "tried", "sampled")),
        SynonymCluster(("night", "evening", "weekend")),
    ]
    return DomainLexicon("sentiment", clusters, _COMMON_FUNCTION_WORDS)


def news_lexicon() -> DomainLexicon:
    """Fake-news-style lexicon (real=0 signalled by NEG, fake=1 by POS).

    Polarity convention: ``positive`` clusters signal the *fake* class
    (sensational language), ``negative`` clusters the *real* class
    (attributive, sourced language) — matching label 1 = fake.
    """
    clusters = [
        # fake / sensational (class 1)
        SynonymCluster(("shocking", "stunning", "jaw-dropping", "bombshell", "explosive", "sensational"), POS),
        SynonymCluster(("exposed", "unmasked", "revealed", "uncovered", "disclosed", "leaked"), POS),
        SynonymCluster(("secret", "hidden", "covert", "clandestine", "undisclosed", "classified"), POS),
        SynonymCluster(("conspiracy", "plot", "scheme", "coverup", "cabal", "racket"), POS),
        SynonymCluster(("destroys", "obliterates", "demolishes", "annihilates", "crushes", "shreds"), POS),
        SynonymCluster(("unbelievable", "incredible2", "outrageous", "preposterous", "astounding", "scandalous"), POS),
        SynonymCluster(("elites", "establishment", "insiders", "globalists", "oligarchs", "kingmakers"), POS),
        SynonymCluster(("truth", "reality", "facts", "evidence", "proof"), POS),
        SynonymCluster(("banned", "censored", "silenced", "suppressed", "blacklisted", "muzzled"), POS),
        SynonymCluster(("miracle", "wonder", "marvel", "phenomenon", "sensation"), POS),
        # real / attributive (class 0)
        SynonymCluster(("reported", "stated", "announced", "declared", "noted", "indicated"), NEG),
        SynonymCluster(("according", "per", "citing", "referencing", "quoting"), NEG),
        SynonymCluster(("officials", "authorities", "spokespeople", "administrators", "regulators", "bureaucrats"), NEG),
        SynonymCluster(("confirmed", "verified", "corroborated", "validated", "substantiated", "authenticated"), NEG),
        SynonymCluster(("investigation", "inquiry", "probe", "examination", "audit", "review3"), NEG),
        SynonymCluster(("statement", "briefing", "release", "communique", "memo", "bulletin"), NEG),
        SynonymCluster(("spokesman", "spokesperson", "representative", "delegate", "liaison"), NEG),
        SynonymCluster(("data", "figures", "statistics", "numbers", "metrics", "tallies"), NEG),
        SynonymCluster(("committee", "panel", "commission", "board", "council", "taskforce"), NEG),
        SynonymCluster(("testimony", "deposition", "hearing", "affidavit", "proceeding"), NEG),
        # neutral topical
        SynonymCluster(("government", "administration", "state")),
        SynonymCluster(("president", "leader", "chief")),
        SynonymCluster(("police", "officers", "detectives")),
        SynonymCluster(("city", "town", "capital")),
        SynonymCluster(("country", "nation", "republic")),
        SynonymCluster(("election", "vote", "ballot")),
        SynonymCluster(("economy", "market", "trade")),
        SynonymCluster(("thursday", "friday", "monday")),
        SynonymCluster(("yesterday", "today", "tonight")),
        SynonymCluster(("sources", "reports", "accounts")),
    ]
    return DomainLexicon("news", clusters, _COMMON_FUNCTION_WORDS)


def spam_lexicon() -> DomainLexicon:
    """Trec07p-style email lexicon (ham=0 via NEG, spam=1 via POS)."""
    clusters = [
        # spam signal (class 1)
        SynonymCluster(("free", "complimentary", "gratis", "costless", "unpaid", "giveaway"), POS),
        SynonymCluster(("winner", "champion", "chosen", "victor", "finalist", "lucky"), POS),
        SynonymCluster(("cash", "money", "funds", "currency", "dollars", "payout"), POS),
        SynonymCluster(("offer", "deal", "bargain", "promotion", "special", "steal"), POS),
        SynonymCluster(("guaranteed", "assured", "promised", "certified", "warranted", "pledged"), POS),
        SynonymCluster(("urgent", "immediate", "instant", "pressing", "expedited", "rush"), POS),
        SynonymCluster(("prize", "reward", "jackpot", "bonus", "windfall", "trophy"), POS),
        SynonymCluster(("discount", "markdown", "saving", "rebate", "reduction", "cutback"), POS),
        SynonymCluster(("click", "tap", "press", "select", "visit", "open"), POS),
        SynonymCluster(("pills", "meds", "supplements", "tablets", "capsules", "remedies"), POS),
        # ham / technical signal (class 0)
        SynonymCluster(("patch", "fix", "hotfix", "bugfix", "correction", "workaround"), NEG),
        SynonymCluster(("compile", "build", "assemble", "link", "rebuild", "make"), NEG),
        SynonymCluster(("function", "method", "routine", "procedure", "subroutine", "callback"), NEG),
        SynonymCluster(("meeting", "standup", "sync", "huddle", "checkin", "retro"), NEG),
        SynonymCluster(("attached", "enclosed", "appended", "included", "bundled"), NEG),
        SynonymCluster(("review2", "feedback", "comments", "critique", "notes", "remarks"), NEG),
        SynonymCluster(("repository", "repo", "codebase", "tree", "project", "source"), NEG),
        SynonymCluster(("documentation", "docs", "manual", "guide", "handbook", "reference"), NEG),
        SynonymCluster(("server", "host", "machine", "node", "box", "instance"), NEG),
        SynonymCluster(("schedule", "agenda", "calendar", "timetable", "itinerary", "roster"), NEG),
        # neutral
        SynonymCluster(("email", "message", "mail")),
        SynonymCluster(("please", "kindly")),
        SynonymCluster(("thanks", "cheers", "regards")),
        SynonymCluster(("team", "group", "crew")),
        SynonymCluster(("week", "month", "quarter")),
        SynonymCluster(("question", "query", "ask")),
        SynonymCluster(("list", "thread", "digest")),
        SynonymCluster(("version", "release", "edition")),
        SynonymCluster(("account", "profile", "login")),
        SynonymCluster(("send", "forward", "deliver")),
    ]
    return DomainLexicon("spam", clusters, _COMMON_FUNCTION_WORDS)
