"""Synthetic malicious-URL corpus — the paper's Table 1 generality claim.

Table 1 lists the framework's applications beyond text classification:
documents, code (malware detection) and *URL addresses (malicious website
check)*.  This module provides that second discrete domain end-to-end: a
generator of benign and malicious (phishing-style) URLs represented as
**character sequences**, which the existing classifiers consume unchanged
(a WCNN over character tokens learns character n-grams) and the existing
word-level attacks transform via per-character candidate sets
(:class:`UrlCharCandidates`).

Malicious URLs exhibit the standard phishing signals: brand-squatting with
digit homoglyphs ("paypa1"), security-bait path words ("verify", "login"),
and cheap TLDs (".xyz", ".top").  Benign URLs are plain
organization/path addresses.  The attack's job — exactly as in the text
domain — is to perturb a malicious URL so the detector reads it as benign
while a human still recognizes the same phishing link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Example, TextDataset
from repro.text.transformations import WordNeighborSets

__all__ = ["UrlCorpusConfig", "make_url_corpus", "UrlCharCandidates", "url_to_tokens", "tokens_to_url"]

_BRANDS = ("paypal", "amazon", "google", "apple", "netflix", "chase", "ebay")
_SQUAT = {"a": "a4", "e": "e3", "i": "i1", "o": "o0", "l": "l1"}
_BAIT_WORDS = ("verify", "login", "secure", "update", "account", "confirm", "signin")
_CHEAP_TLDS = (".xyz", ".top", ".click", ".info", ".live")
_SAFE_TLDS = (".com", ".org", ".edu", ".gov")
_BENIGN_HOSTS = (
    "github", "wikipedia", "python", "arxiv", "stanford", "nytimes",
    "mozilla", "debian", "acm", "nature",
)
_BENIGN_PATHS = (
    "docs", "blog", "news", "papers", "wiki", "projects", "articles",
    "research", "library", "archive",
)
_SUBDOMAINS = ("www.", "", "m.", "mail.")


def url_to_tokens(url: str) -> list[str]:
    """A URL as a character-token sequence (the discrete feature list)."""
    return list(url)


def tokens_to_url(tokens: list[str]) -> str:
    return "".join(tokens)


@dataclass
class UrlCorpusConfig:
    """Size and noise knobs for the URL corpus."""

    n_train: int = 400
    n_test: int = 120
    squat_prob: float = 0.85  # malicious URLs that digit-squat the brand
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.squat_prob <= 1.0:
            raise ValueError("squat_prob must be in [0, 1]")


def _benign_url(rng: np.random.Generator) -> str:
    host = str(rng.choice(_BENIGN_HOSTS))
    sub = str(rng.choice(_SUBDOMAINS))
    tld = str(rng.choice(_SAFE_TLDS))
    path = str(rng.choice(_BENIGN_PATHS))
    page = str(rng.choice(_BENIGN_PATHS))
    return f"{sub}{host}{tld}/{path}/{page}"


def _squat(brand: str, rng: np.random.Generator) -> str:
    """Replace one letter of the brand with its digit homoglyph."""
    positions = [i for i, ch in enumerate(brand) if ch in _SQUAT]
    if not positions:
        return brand
    i = int(rng.choice(positions))
    return brand[:i] + _SQUAT[brand[i]][1] + brand[i + 1 :]


def _malicious_url(rng: np.random.Generator, squat_prob: float) -> str:
    brand = str(rng.choice(_BRANDS))
    if rng.random() < squat_prob:
        brand = _squat(brand, rng)
    bait = str(rng.choice(_BAIT_WORDS))
    tld = str(rng.choice(_CHEAP_TLDS))
    path = str(rng.choice(_BAIT_WORDS))
    uid = rng.integers(10, 99)
    return f"{brand}-{bait}{tld}/{path}?id={uid}"


def make_url_corpus(config: UrlCorpusConfig | None = None) -> TextDataset:
    """Balanced benign/malicious URL dataset over character tokens."""
    config = config or UrlCorpusConfig()
    rng = np.random.default_rng(config.seed)

    def sample(label: int) -> Example:
        url = _malicious_url(rng, config.squat_prob) if label else _benign_url(rng)
        return Example(tuple(url_to_tokens(url)), label)

    train = [sample(i % 2) for i in range(config.n_train)]
    test = [sample(i % 2) for i in range(config.n_test)]
    return TextDataset("urls", ("benign", "malicious"), train, test)


class UrlCharCandidates:
    """Function-preserving character substitutions for URL attacks.

    A phishing URL must stay a working phishing URL, so candidates are
    restricted to perturbations that do not change where the link goes in
    a way the attacker cares about: letter ↔ digit-homoglyph toggles
    inside the host (registering a one-character-different domain is the
    standard squatting move) and letter-for-letter swaps among visually
    close pairs.  Path and query characters may also toggle homoglyphs.
    """

    PAIRS = {
        "a": "4", "4": "a",
        "b": "8", "8": "b",
        "e": "3", "3": "e",
        "g": "9", "9": "g",
        "i": "1", "1": "i",
        "l": "1",
        "o": "0", "0": "o",
        "s": "5", "5": "s",
        "t": "7", "7": "t",
        "z": "2", "2": "z",
    }
    _PROTECTED = set("/?.=-&")

    def __init__(self, max_candidates: int = 3) -> None:
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.max_candidates = max_candidates

    def candidates_for_char(self, char: str) -> list[str]:
        if char in self._PROTECTED:
            return []
        out = []
        mapped = self.PAIRS.get(char)
        if mapped:
            out.append(mapped)
        return out[: self.max_candidates]

    def neighbor_sets(self, tokens: list[str]) -> WordNeighborSets:
        return WordNeighborSets([self.candidates_for_char(t) for t in tokens])
