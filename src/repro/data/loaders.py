"""Loading real corpora from disk.

The synthetic generators make the repository self-contained, but the
library is meant to attack classifiers on *your* data too.  These loaders
read labeled text from the two common interchange formats (CSV and JSONL)
into :class:`~repro.data.datasets.TextDataset`, tokenizing with the same
pipeline the rest of the library uses.
"""

from __future__ import annotations

import csv
import json
import os

import numpy as np

from repro.data.datasets import Example, TextDataset
from repro.text.tokenizer import tokenize

__all__ = ["load_csv_dataset", "load_jsonl_dataset", "split_examples"]


def split_examples(
    examples: list[Example], test_fraction: float = 0.2, seed: int = 0
) -> tuple[list[Example], list[Example]]:
    """Shuffle and split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(examples))
    n_test = max(1, int(len(examples) * test_fraction))
    test = [examples[i] for i in order[:n_test]]
    train = [examples[i] for i in order[n_test:]]
    return train, test


def _coerce_label(raw: str | int, class_names: tuple[str, str]) -> int:
    if isinstance(raw, int) or (isinstance(raw, str) and raw.strip() in ("0", "1")):
        return int(raw)
    name = str(raw).strip().lower()
    lowered = tuple(c.lower() for c in class_names)
    if name in lowered:
        return lowered.index(name)
    raise ValueError(f"label {raw!r} is neither 0/1 nor one of {class_names}")


def load_csv_dataset(
    path: str | os.PathLike,
    name: str,
    class_names: tuple[str, str],
    text_column: str = "text",
    label_column: str = "label",
    test_fraction: float = 0.2,
    seed: int = 0,
) -> TextDataset:
    """Load a labeled CSV into a tokenized, split :class:`TextDataset`.

    Labels may be 0/1 integers or the class names themselves.
    """
    examples: list[Example] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or text_column not in reader.fieldnames:
            raise ValueError(f"CSV is missing the {text_column!r} column")
        if label_column not in reader.fieldnames:
            raise ValueError(f"CSV is missing the {label_column!r} column")
        for row in reader:
            tokens = tokenize(row[text_column])
            if not tokens:
                continue
            examples.append(Example(tuple(tokens), _coerce_label(row[label_column], class_names)))
    if not examples:
        raise ValueError(f"no usable rows in {path}")
    train, test = split_examples(examples, test_fraction, seed)
    return TextDataset(name, class_names, train, test)


def load_jsonl_dataset(
    path: str | os.PathLike,
    name: str,
    class_names: tuple[str, str],
    text_key: str = "text",
    label_key: str = "label",
    test_fraction: float = 0.2,
    seed: int = 0,
) -> TextDataset:
    """Load a labeled JSON-lines file (one object per line)."""
    examples: list[Example] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if text_key not in record or label_key not in record:
                raise ValueError(f"line {line_no} is missing {text_key!r} or {label_key!r}")
            tokens = tokenize(str(record[text_key]))
            if not tokens:
                continue
            examples.append(Example(tuple(tokens), _coerce_label(record[label_key], class_names)))
    if not examples:
        raise ValueError(f"no usable records in {path}")
    train, test = split_examples(examples, test_fraction, seed)
    return TextDataset(name, class_names, train, test)
