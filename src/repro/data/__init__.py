"""Synthetic corpora and dataset containers (substitute for the paper's
News / Trec07p / Yelp datasets — see DESIGN.md for the substitution note)."""

from repro.data.datasets import Example, TextDataset
from repro.data.generators import (
    CorpusConfig,
    SyntheticCorpusGenerator,
    make_all_corpora,
    make_news_corpus,
    make_sentiment_corpus,
    make_spam_corpus,
)
from repro.data.lexicon import (
    DomainLexicon,
    SynonymCluster,
    news_lexicon,
    sentiment_lexicon,
    spam_lexicon,
)
from repro.data.loaders import load_csv_dataset, load_jsonl_dataset, split_examples
from repro.data.urls import UrlCharCandidates, UrlCorpusConfig, make_url_corpus

__all__ = [
    "Example",
    "TextDataset",
    "CorpusConfig",
    "SyntheticCorpusGenerator",
    "make_news_corpus",
    "make_sentiment_corpus",
    "make_spam_corpus",
    "make_all_corpora",
    "DomainLexicon",
    "SynonymCluster",
    "sentiment_lexicon",
    "news_lexicon",
    "spam_lexicon",
    "load_csv_dataset",
    "load_jsonl_dataset",
    "split_examples",
    "make_url_corpus",
    "UrlCorpusConfig",
    "UrlCharCandidates",
]
