"""Dataset containers for tokenized, labeled text corpora."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["Example", "TextDataset"]


@dataclass(frozen=True)
class Example:
    """One labeled, tokenized document."""

    tokens: tuple[str, ...]
    label: int

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise ValueError(f"binary label expected, got {self.label}")


class TextDataset:
    """A binary text-classification corpus with train/test splits.

    Mirrors the role of the paper's News / Trec07p / Yelp datasets
    (Table 6): a named task, two class names, and token-level documents.
    """

    def __init__(
        self,
        name: str,
        class_names: tuple[str, str],
        train: Sequence[Example],
        test: Sequence[Example],
    ) -> None:
        if len(class_names) != 2:
            raise ValueError("binary classification requires exactly two class names")
        self.name = name
        self.class_names = class_names
        self.train = list(train)
        self.test = list(test)

    # -- access ---------------------------------------------------------
    def split(self, which: str) -> list[Example]:
        if which == "train":
            return self.train
        if which == "test":
            return self.test
        raise KeyError(f"unknown split {which!r} (use 'train' or 'test')")

    def documents(self, which: str = "train") -> list[list[str]]:
        return [list(ex.tokens) for ex in self.split(which)]

    def labels(self, which: str = "train") -> np.ndarray:
        return np.array([ex.label for ex in self.split(which)], dtype=np.int64)

    def subsample(self, which: str, n: int, seed: int = 0) -> list[Example]:
        """A reproducible random subset of a split (without replacement)."""
        examples = self.split(which)
        if n >= len(examples):
            return list(examples)
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(examples), size=n, replace=False)
        return [examples[i] for i in idx]

    def with_extra_train(self, extra: Iterable[Example]) -> "TextDataset":
        """A copy whose training split is augmented (adversarial training)."""
        return TextDataset(self.name, self.class_names, self.train + list(extra), self.test)

    # -- statistics (Table 6) --------------------------------------------
    def statistics(self) -> dict[str, float | int | str]:
        lengths = [len(ex.tokens) for ex in self.train + self.test]
        all_words = {t for ex in self.train + self.test for t in ex.tokens}
        train_labels = self.labels("train")
        return {
            "task": self.name,
            "n_train": len(self.train),
            "n_test": len(self.test),
            "vocab_size": len(all_words),
            "avg_length": float(np.mean(lengths)) if lengths else 0.0,
            "max_length": int(max(lengths)) if lengths else 0,
            "positive_fraction": float(train_labels.mean()) if len(train_labels) else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"TextDataset(name={self.name!r}, train={len(self.train)}, "
            f"test={len(self.test)}, classes={self.class_names})"
        )
