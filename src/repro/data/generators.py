"""Synthetic corpus generators for the three text-classification tasks.

The paper evaluates on Fake/Real News, Trec07p spam and Yelp sentiment.
Offline we synthesize corpora with the same *structure*: binary labels
carried by class-discriminative vocabulary embedded in templated sentences,
plus neutral filler.  Scale is reduced (hundreds of documents instead of
hundreds of thousands) but the statistics that matter for the attack
dynamics are preserved:

- clean accuracy of WCNN/LSTM classifiers lands in the paper's 93–99% band;
- each document contains a handful of signal words, so a λ_w = 20% word
  budget is meaningful;
- signal words live in synonym clusters whose canonical member dominates
  the training distribution, so paraphrase candidates are under-trained —
  the property synonym-substitution attacks exploit on real models.

Each sentence template is a list of tokens where ``<sig>`` slots take a
class-signal word, ``<n1>/<n2>/<n3>`` take neutral-cluster words, and
everything else is literal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Example, TextDataset
from repro.data.lexicon import (
    NEG,
    POS,
    DomainLexicon,
    SynonymCluster,
    news_lexicon,
    sentiment_lexicon,
    spam_lexicon,
)

__all__ = [
    "CorpusConfig",
    "SyntheticCorpusGenerator",
    "make_sentiment_corpus",
    "make_news_corpus",
    "make_spam_corpus",
    "make_all_corpora",
]

# Templates shared across domains; domain flavor comes from the lexicon.
_TEMPLATES_SIGNAL = [
    ["the", "<n1>", "was", "<sig>", "."],
    ["<sig>", "<n1>", "and", "a", "<sig>", "<n2>", "."],
    ["i", "thought", "the", "<n1>", "was", "really", "<sig>", "."],
    ["it", "was", "a", "<sig>", "<n1>", "with", "<sig>", "<n2>", "."],
    ["the", "<n1>", "seemed", "<sig>", "and", "the", "<n2>", "was", "<sig>", "."],
    ["<sig>", ",", "simply", "<sig>", "."],
    ["we", "found", "the", "<n1>", "quite", "<sig>", "."],
]

_TEMPLATES_NEUTRAL = [
    ["the", "<n1>", "and", "the", "<n2>", "."],
    ["we", "saw", "the", "<n1>", "at", "the", "<n2>", "."],
    ["this", "is", "about", "the", "<n1>", "."],
    ["it", "was", "a", "<n1>", "in", "the", "<n2>", "."],
    ["they", "had", "a", "<n1>", "for", "the", "<n2>", "."],
]


@dataclass
class CorpusConfig:
    """Knobs for synthetic corpus generation."""

    n_train: int = 400
    n_test: int = 120
    min_sentences: int = 4
    max_sentences: int = 8
    signal_density: float = 0.7  # probability a sentence carries class signal
    contrarian_rate: float = 0.04  # probability a signal slot flips polarity
    canonical_prob: float = 0.75  # frequency bias toward the canonical synonym
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_sentences < 1 or self.max_sentences < self.min_sentences:
            raise ValueError("sentence bounds must satisfy 1 <= min <= max")
        for p in (self.signal_density, self.contrarian_rate, self.canonical_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")


class SyntheticCorpusGenerator:
    """Samples labeled documents from a :class:`DomainLexicon`."""

    def __init__(self, lexicon: DomainLexicon, config: CorpusConfig | None = None) -> None:
        self.lexicon = lexicon
        self.config = config or CorpusConfig()
        self._pos = lexicon.clusters_by_polarity(POS)
        self._neg = lexicon.clusters_by_polarity(NEG)
        self._neutral = lexicon.clusters_by_polarity("neutral")
        if not self._pos or not self._neg or len(self._neutral) < 3:
            raise ValueError(
                "lexicon needs positive, negative and >= 3 neutral clusters"
            )

    # -- sampling helpers --------------------------------------------------
    def _pick_word(self, cluster: SynonymCluster, rng: np.random.Generator) -> str:
        """Sample a cluster member with the canonical-frequency bias."""
        if len(cluster.words) == 1 or rng.random() < self.config.canonical_prob:
            return cluster.canonical
        return str(rng.choice(cluster.words[1:]))

    def _signal_word(self, label: int, rng: np.random.Generator) -> str:
        flip = rng.random() < self.config.contrarian_rate
        effective = label if not flip else 1 - label
        pool = self._pos if effective == 1 else self._neg
        cluster = pool[rng.integers(len(pool))]
        return self._pick_word(cluster, rng)

    def _neutral_word(self, rng: np.random.Generator, exclude: set[str]) -> str:
        for _ in range(10):
            cluster = self._neutral[rng.integers(len(self._neutral))]
            word = self._pick_word(cluster, rng)
            if word not in exclude:
                return word
        return word  # give up on uniqueness after 10 tries

    def _fill_template(
        self, template: list[str], label: int, rng: np.random.Generator
    ) -> list[str]:
        used: set[str] = set()
        out: list[str] = []
        for tok in template:
            if tok == "<sig>":
                out.append(self._signal_word(label, rng))
            elif tok.startswith("<n"):
                word = self._neutral_word(rng, used)
                used.add(word)
                out.append(word)
            else:
                out.append(tok)
        return out

    def sample_document(self, label: int, rng: np.random.Generator) -> Example:
        """Sample one labeled document as an :class:`Example`."""
        cfg = self.config
        n_sentences = int(rng.integers(cfg.min_sentences, cfg.max_sentences + 1))
        tokens: list[str] = []
        n_signal = 0
        for _ in range(n_sentences):
            if rng.random() < cfg.signal_density:
                template = _TEMPLATES_SIGNAL[rng.integers(len(_TEMPLATES_SIGNAL))]
                n_signal += 1
            else:
                template = _TEMPLATES_NEUTRAL[rng.integers(len(_TEMPLATES_NEUTRAL))]
            tokens.extend(self._fill_template(template, label, rng))
        if n_signal == 0:  # guarantee the label is expressed at least once
            template = _TEMPLATES_SIGNAL[rng.integers(len(_TEMPLATES_SIGNAL))]
            tokens.extend(self._fill_template(template, label, rng))
        return Example(tuple(tokens), label)

    def generate(self, name: str, class_names: tuple[str, str]) -> TextDataset:
        """Generate a full train/test dataset (balanced labels)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        train = [
            self.sample_document(label=i % 2, rng=rng) for i in range(cfg.n_train)
        ]
        test = [self.sample_document(label=i % 2, rng=rng) for i in range(cfg.n_test)]
        return TextDataset(name, class_names, train, test)


def make_sentiment_corpus(config: CorpusConfig | None = None) -> TextDataset:
    """Yelp-style sentiment corpus (0 = negative, 1 = positive)."""
    gen = SyntheticCorpusGenerator(sentiment_lexicon(), config or CorpusConfig(seed=101))
    return gen.generate("yelp", ("negative", "positive"))


def make_news_corpus(config: CorpusConfig | None = None) -> TextDataset:
    """Fake-news corpus (0 = real, 1 = fake)."""
    gen = SyntheticCorpusGenerator(news_lexicon(), config or CorpusConfig(seed=202))
    return gen.generate("news", ("real", "fake"))


def make_spam_corpus(config: CorpusConfig | None = None) -> TextDataset:
    """Trec07p-style spam corpus (0 = ham, 1 = spam)."""
    gen = SyntheticCorpusGenerator(spam_lexicon(), config or CorpusConfig(seed=303))
    return gen.generate("trec07p", ("ham", "spam"))


def make_all_corpora(config: CorpusConfig | None = None) -> dict[str, TextDataset]:
    """All three task corpora keyed by dataset name (paper Table 6 rows)."""
    return {
        "news": make_news_corpus(config),
        "trec07p": make_spam_corpus(config),
        "yelp": make_sentiment_corpus(config),
    }
