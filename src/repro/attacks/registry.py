"""Declarative attack registry: name → (source × strategy) spec.

Problem 1 is a two-axis space — what can change × how to search — and
every attack in the repo is one point in it.  This table makes that
explicit: :data:`ATTACKS` maps stable names to :class:`AttackSpec`\\ s, and
:func:`build_attack` instantiates one against a victim model.  The
experiment drivers (:mod:`repro.experiments.common`), the parallel corpus
runner and the ``list-attacks`` CLI verb all resolve attacks by these
names, and novel combinations (char-flip × beam, sentence × lazy, ...)
are one ``AttackEngine(model, source, strategy)`` away — see
``docs/architecture.md`` for a worked example.

Specs and builders are plain module-level objects, so they pickle across
the fork pool.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.attacks.base import Attack
from repro.attacks.beam import BeamSearchWordAttack
from repro.attacks.charflip import CharFlipCandidates
from repro.attacks.engine import AttackEngine
from repro.attacks.gradient_guided import GradientGuidedGreedyAttack
from repro.attacks.gradient_word import GradientWordAttack
from repro.attacks.greedy_word import ObjectiveGreedyWordAttack
from repro.attacks.joint import JointParaphraseAttack
from repro.attacks.proposals import GumbelSource, WordParaphraseSource
from repro.attacks.random_attack import RandomWordAttack
from repro.attacks.search import GreedySearch, HeuristicRankSearch, ParticleSwarmSearch
from repro.attacks.sentence import GreedySentenceAttack

__all__ = ["AttackSpec", "ATTACKS", "build_attack"]


@dataclass(frozen=True)
class AttackSpec:
    """One named point in the source × strategy space.

    ``needs`` declares which paraphrasers the builder consumes
    (``"word"`` / ``"sentence"``); ``params`` the constructor keywords it
    forwards.  Callers like :meth:`ExperimentContext.make_attack` use both
    to assemble arguments declaratively instead of per-attack branches.

    ``delta`` declares how this source × strategy combination benefits from
    incremental delta scoring (``REPRO_DELTA_SCORING``, :mod:`repro.nn.delta`):

    - ``"yes"`` — candidate scoring is single-edit against an incumbent
      base, so the whole search runs incrementally;
    - ``"word-stage"`` — staged pipeline whose word stage is delta-scored
      while length-changing sentence candidates take full forwards;
    - ``"equal-len"`` — delta applies only when a candidate happens to
      keep the token count (rare for sentence paraphrases);
    - ``"no"`` — the strategy does no candidate scoring (first-order,
      random), so there is nothing to score incrementally.

    Enabling delta scoring is always safe regardless of this value — the
    score function falls back to full forwards per candidate; the field
    is advisory (surfaced by the ``list-attacks`` CLI).
    """

    name: str
    source: str  # candidate-source axis, e.g. "word-paraphrase"
    strategy: str  # search-strategy axis, e.g. "greedy scan"
    paper: str  # paper reference, e.g. "Alg. 3"
    summary: str
    builder: Callable[..., Attack]
    needs: tuple[str, ...] = ("word",)
    params: tuple[str, ...] = field(default_factory=tuple)
    delta: str = "no"  # delta-scoring eligibility: yes | word-stage | equal-len | no


# -- builders (module-level for picklability) -------------------------------

def _build_greedy_word(model, word_paraphraser=None, **kwargs):
    return ObjectiveGreedyWordAttack(model, word_paraphraser, **kwargs)


def _build_lazy_greedy_word(model, word_paraphraser=None, **kwargs):
    return ObjectiveGreedyWordAttack(model, word_paraphraser, strategy="lazy", **kwargs)


def _build_greedy_sentence(model, sentence_paraphraser=None, **kwargs):
    return GreedySentenceAttack(model, sentence_paraphraser, **kwargs)


def _build_gradient_guided(model, word_paraphraser=None, **kwargs):
    return GradientGuidedGreedyAttack(model, word_paraphraser, **kwargs)


def _build_gradient_word(model, word_paraphraser=None, **kwargs):
    return GradientWordAttack(model, word_paraphraser, **kwargs)


def _build_random_word(model, word_paraphraser=None, **kwargs):
    return RandomWordAttack(model, word_paraphraser, **kwargs)


def _build_beam_word(model, word_paraphraser=None, **kwargs):
    return BeamSearchWordAttack(model, word_paraphraser, **kwargs)


def _build_charflip_greedy(model, **kwargs):
    return ObjectiveGreedyWordAttack(model, CharFlipCandidates(), **kwargs)


def _build_joint(model, word_paraphraser=None, sentence_paraphraser=None, **kwargs):
    return JointParaphraseAttack(model, word_paraphraser, sentence_paraphraser, **kwargs)


def _build_joint_greedy(model, word_paraphraser=None, sentence_paraphraser=None, **kwargs):
    return JointParaphraseAttack(
        model,
        word_paraphraser,
        sentence_paraphraser,
        word_attack="objective-greedy",
        **kwargs,
    )


def _build_gumbel_word(
    model,
    word_paraphraser=None,
    *,
    word_budget_ratio=0.2,
    tau=0.7,
    n_probes=8,
    temperature=0.1,
    keep_ratio=0.5,
    seed=0,
    use_cache=True,
    cache_max_entries=None,
    max_queries=None,
):
    source = GumbelSource(
        word_paraphraser,
        word_budget_ratio=word_budget_ratio,
        n_probes=n_probes,
        temperature=temperature,
        keep_ratio=keep_ratio,
        seed=seed,
    )
    return AttackEngine(
        model,
        source,
        GreedySearch(tau),
        name="gumbel-word",
        use_cache=use_cache,
        cache_max_entries=cache_max_entries,
        max_queries=max_queries,
    )


def _build_pso_word(
    model,
    word_paraphraser=None,
    *,
    word_budget_ratio=0.2,
    tau=0.7,
    n_particles=8,
    iterations=10,
    inertia=0.5,
    cognitive=0.3,
    mutation_rate=0.2,
    seed=0,
    use_cache=True,
    cache_max_entries=None,
    max_queries=None,
):
    search = ParticleSwarmSearch(
        tau=tau,
        n_particles=n_particles,
        iterations=iterations,
        inertia=inertia,
        cognitive=cognitive,
        mutation_rate=mutation_rate,
        seed=seed,
    )
    return AttackEngine(
        model,
        WordParaphraseSource(word_paraphraser, word_budget_ratio),
        search,
        name="pso-word",
        use_cache=use_cache,
        cache_max_entries=cache_max_entries,
        max_queries=max_queries,
    )


def _build_heuristic_saliency(
    model,
    word_paraphraser=None,
    *,
    word_budget_ratio=0.2,
    tau=0.7,
    candidate_rule="best",
    mask_token="<unk>",
    use_cache=True,
    cache_max_entries=None,
    max_queries=None,
):
    search = HeuristicRankSearch(
        tau=tau, candidate_rule=candidate_rule, mask_token=mask_token
    )
    return AttackEngine(
        model,
        WordParaphraseSource(word_paraphraser, word_budget_ratio),
        search,
        name="heuristic-saliency",
        use_cache=use_cache,
        cache_max_entries=cache_max_entries,
        max_queries=max_queries,
    )


_COMMON = ("word_budget_ratio", "tau", "use_cache", "cache_max_entries")

ATTACKS: dict[str, AttackSpec] = {
    "greedy_word": AttackSpec(
        name="greedy_word",
        source="word-paraphrase",
        strategy="greedy scan",
        paper="Kuleshov [19] baseline",
        summary="one best word substitution per round, full rescan",
        builder=_build_greedy_word,
        needs=("word",),
        params=_COMMON + ("strategy",),
        delta="yes",
    ),
    "lazy_greedy_word": AttackSpec(
        name="lazy_greedy_word",
        source="word-paraphrase",
        strategy="CELF lazy greedy",
        paper="Kuleshov [19] + Minoux/CELF",
        summary="greedy via stale-bound heap; identical picks under submodularity",
        builder=_build_lazy_greedy_word,
        needs=("word",),
        params=_COMMON,
        delta="yes",
    ),
    "greedy_sentence": AttackSpec(
        name="greedy_sentence",
        source="sentence-paraphrase",
        strategy="greedy scan",
        paper="Alg. 2",
        summary="greedy whole-sentence paraphrasing",
        builder=_build_greedy_sentence,
        needs=("sentence",),
        params=("sentence_budget_ratio", "tau", "strategy", "use_cache", "cache_max_entries"),
        delta="equal-len",
    ),
    "gradient_guided": AttackSpec(
        name="gradient_guided",
        source="gradient-ranked word-paraphrase",
        strategy="Gauss-Southwell joint greedy",
        paper="Alg. 3",
        summary="gradient position preselection + joint candidate product",
        builder=_build_gradient_guided,
        needs=("word",),
        params=_COMMON + ("words_per_iteration", "selection"),
        delta="yes",
    ),
    "gradient_word": AttackSpec(
        name="gradient_word",
        source="word-paraphrase",
        strategy="first-order one-shot",
        paper="Gong [18] baseline",
        summary="closed-form linearized substitution, no candidate scoring",
        builder=_build_gradient_word,
        needs=("word",),
        params=("word_budget_ratio", "iterations"),
        delta="no",
    ),
    "random_word": AttackSpec(
        name="random_word",
        source="word-paraphrase",
        strategy="random",
        paper="random baseline",
        summary="uniformly random substitutions within the budget",
        builder=_build_random_word,
        needs=("word",),
        params=("word_budget_ratio", "seed"),
        delta="no",
    ),
    "beam_word": AttackSpec(
        name="beam_word",
        source="word-paraphrase",
        strategy="beam",
        paper="search-effort upper reference",
        summary="width-B beam over substitution sets",
        builder=_build_beam_word,
        needs=("word",),
        params=_COMMON + ("beam_width",),
        delta="yes",
    ),
    "charflip_greedy": AttackSpec(
        name="charflip_greedy",
        source="char-flip",
        strategy="greedy scan",
        paper="Remark 2 (HotFlip-style)",
        summary="greedy over character-edit candidates",
        builder=_build_charflip_greedy,
        needs=(),
        params=("word_budget_ratio", "tau", "strategy", "use_cache", "cache_max_entries"),
        delta="yes",
    ),
    "joint": AttackSpec(
        name="joint",
        source="sentence-paraphrase → gradient-ranked word-paraphrase",
        strategy="staged: greedy then Gauss-Southwell",
        paper="Alg. 1 (headline, 'ours')",
        summary="sentence stage then Alg. 3 word stage, one shared cache",
        builder=_build_joint,
        needs=("word", "sentence"),
        params=(
            "word_budget_ratio",
            "sentence_budget_ratio",
            "tau",
            "words_per_iteration",
            "strategy",
            "use_cache",
            "cache_max_entries",
        ),
        delta="word-stage",
    ),
    "gumbel_word": AttackSpec(
        name="gumbel_word",
        source="gumbel word-paraphrase",
        strategy="greedy scan over sampled positions",
        paper="Yang & Chen et al., arXiv:1805.12316",
        summary="probe forwards fit a position distribution; Gumbel-top-k restricts the scan",
        builder=_build_gumbel_word,
        needs=("word",),
        params=_COMMON + ("n_probes", "temperature", "keep_ratio", "seed", "max_queries"),
        delta="yes",
    ),
    "pso_word": AttackSpec(
        name="pso_word",
        source="word-paraphrase",
        strategy="particle swarm",
        paper="Zang et al., arXiv:1910.12196",
        summary="population of substitution sets evolved by pbest/gbest crossover",
        builder=_build_pso_word,
        needs=("word",),
        params=_COMMON
        + ("n_particles", "iterations", "inertia", "cognitive", "mutation_rate", "seed", "max_queries"),
        delta="yes",
    ),
    "heuristic_saliency": AttackSpec(
        name="heuristic_saliency",
        source="word-paraphrase",
        strategy="saliency rank-then-replace",
        paper="Berger et al., arXiv:2109.07926",
        summary="mask-saliency ranking, one substitution pass, no search",
        builder=_build_heuristic_saliency,
        needs=("word",),
        params=_COMMON + ("candidate_rule", "max_queries"),
        delta="yes",
    ),
    "joint_greedy": AttackSpec(
        name="joint_greedy",
        source="sentence-paraphrase → word-paraphrase",
        strategy="staged: greedy then greedy",
        paper="Alg. 1 variant",
        summary="sentence stage then objective-greedy word stage",
        builder=_build_joint_greedy,
        needs=("word", "sentence"),
        params=(
            "word_budget_ratio",
            "sentence_budget_ratio",
            "tau",
            "strategy",
            "use_cache",
            "cache_max_entries",
        ),
        delta="word-stage",
    ),
}


def build_attack(
    name: str,
    model,
    *,
    word_paraphraser=None,
    sentence_paraphraser=None,
    **kwargs,
) -> Attack:
    """Instantiate a registry attack by name.

    Paraphrasers are forwarded only when the spec needs them; unknown
    names raise ``KeyError`` with the available choices, unknown keyword
    arguments raise ``TypeError`` (from the constructor) as usual.
    """
    try:
        spec = ATTACKS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; choose from {sorted(ATTACKS)}"
        ) from None
    call_kwargs = dict(kwargs)
    if "word" in spec.needs:
        if word_paraphraser is None:
            raise ValueError(f"attack {name!r} needs word_paraphraser")
        call_kwargs["word_paraphraser"] = word_paraphraser
    if "sentence" in spec.needs:
        if sentence_paraphraser is None:
            raise ValueError(f"attack {name!r} needs sentence_paraphraser")
        call_kwargs["sentence_paraphraser"] = sentence_paraphraser
    return spec.builder(model, **call_kwargs)
