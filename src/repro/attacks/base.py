"""Attack interface and result records.

All attacks are *targeted* (paper Sec. 3): given a document and a target
label ``y``, they search for a transformation maximizing ``C_y(V(T_l(x)))``
subject to the paraphrasing budgets.  For binary classification the usual
usage is ``target = 1 − predicted``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.models.base import TextClassifier

__all__ = ["AttackResult", "Attack", "count_word_changes"]


def count_word_changes(original: Sequence[str], adversarial: Sequence[str]) -> int:
    """Number of positions where the two token lists differ.

    Length changes (from sentence paraphrasing) are counted as the length
    difference plus positional mismatches over the common prefix length.
    """
    common = min(len(original), len(adversarial))
    diff = sum(1 for a, b in zip(original[:common], adversarial[:common]) if a != b)
    return diff + abs(len(original) - len(adversarial))


@dataclass
class AttackResult:
    """Outcome of attacking one document."""

    original: list[str]
    adversarial: list[str]
    target_label: int
    original_prob: float  # C_y before the attack
    adversarial_prob: float  # C_y after the attack
    success: bool  # adversarial prediction == target label
    n_word_changes: int = 0
    n_sentence_changes: int = 0
    n_queries: int = 0  # documents scored by the model
    wall_time: float = 0.0
    stages: list[str] = field(default_factory=list)  # e.g. ["sentence", "word"]

    @property
    def prob_gain(self) -> float:
        return self.adversarial_prob - self.original_prob


class Attack:
    """Base class: owns the victim model and counts its queries."""

    name = "attack"

    def __init__(self, model: TextClassifier) -> None:
        self.model = model
        self._queries = 0

    # -- model access with query accounting --------------------------------
    def _score_batch(self, docs: list[list[str]], target_label: int) -> list[float]:
        """``C_y`` for a batch of candidate documents."""
        if not docs:
            return []
        self._queries += len(docs)
        probs = self.model.predict_proba(docs)
        return probs[:, target_label].tolist()

    def _score(self, doc: Sequence[str], target_label: int) -> float:
        return self._score_batch([list(doc)], target_label)[0]

    # -- template method -------------------------------------------------------
    def attack(self, doc: Sequence[str], target_label: int) -> AttackResult:
        """Run the attack; concrete classes implement :meth:`_run`."""
        if target_label not in (0, 1):
            raise ValueError(f"target label must be 0 or 1, got {target_label}")
        doc = list(doc)
        if not doc:
            raise ValueError("cannot attack an empty document")
        self._queries = 0
        start = time.perf_counter()
        original_prob = self._score(doc, target_label)
        adversarial, stages = self._run(doc, target_label)
        # Success is judged with deterministic inference: if the victim uses
        # Bayesian (inference-time) dropout during the *search* — the paper's
        # WCNN setting (Sec. 6.4) — the verdict must not depend on one noisy
        # sample.
        inference_dropout = getattr(self.model, "inference_dropout", 0.0)
        if inference_dropout:
            self.model.inference_dropout = 0.0
        try:
            adv_probs = self.model.predict_proba([adversarial])[0]
        finally:
            if inference_dropout:
                self.model.inference_dropout = inference_dropout
        elapsed = time.perf_counter() - start
        return AttackResult(
            original=doc,
            adversarial=adversarial,
            target_label=target_label,
            original_prob=original_prob,
            adversarial_prob=float(adv_probs[target_label]),
            success=bool(adv_probs.argmax() == target_label),
            n_word_changes=count_word_changes(doc, adversarial),
            n_sentence_changes=stages.count("sentence"),
            n_queries=self._queries,
            wall_time=elapsed,
            stages=sorted(set(stages)),
        )

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        """Return (adversarial tokens, stage tags). Implemented by subclasses."""
        raise NotImplementedError
