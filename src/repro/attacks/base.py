"""Attack interface and result records.

All attacks are *targeted* (paper Sec. 3): given a document and a target
label ``y``, they search for a transformation maximizing ``C_y(V(T_l(x)))``
subject to the paraphrasing budgets.  For binary classification the usual
usage is ``target = 1 − predicted``.

Model access goes through :meth:`Attack._score_batch`, which batches,
dedups and (for deterministic victims) memoizes candidate scores via
:class:`~repro.attacks.cache.ScoreCache` — see that module for the
``n_queries`` / ``n_cache_hits`` accounting contract.
"""

from __future__ import annotations

import difflib
import time
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.attacks.cache import ScoreCache, score_key
from repro.models.base import TextClassifier

__all__ = ["AttackResult", "AttackFailure", "Attack", "count_word_changes", "reseed_object"]


def reseed_object(obj, seed: int) -> None:
    """Reset every RNG stream reachable from ``obj`` to a function of ``seed``.

    Streams are discovered by introspection, so components never hand-roll
    reseed logic: ``np.random.Generator`` attributes are replaced with
    ``default_rng((seed, offset))`` (``offset`` = the attribute's index in
    the sorted attribute list, so distinct streams on one object stay
    distinct), plain integer ``seed`` attributes are rewritten, and the
    walk recurses into sub-:class:`Attack`\\ s and into any collaborator
    marked ``_reseed_recurse`` (candidate sources and search strategies).
    """
    for offset, name in enumerate(sorted(vars(obj))):
        value = getattr(obj, name)
        if isinstance(value, np.random.Generator):
            setattr(obj, name, np.random.default_rng((seed, offset)))
        elif name == "seed" and isinstance(value, int):
            setattr(obj, name, seed)
        elif isinstance(value, Attack) and value is not obj:
            value.reseed(seed)
        elif getattr(value, "_reseed_recurse", False):
            value.reseed(seed)


def count_word_changes(original: Sequence[str], adversarial: Sequence[str]) -> int:
    """Number of word edits between the two token lists, under alignment.

    Word-level substitutions keep positions, so for equal-length documents
    this is the positional (Hamming) count — exactly the size of the
    transformation support ``supp(l)``.  When a sentence paraphrase changes
    the length, tokens shift and a positional comparison would charge every
    downstream token; instead the documents are aligned with difflib
    opcodes and edits are counted per aligned block (a replaced block costs
    the larger of its two sides; insertions/deletions cost their length).
    """
    original = list(original)
    adversarial = list(adversarial)
    if len(original) == len(adversarial):
        return sum(1 for a, b in zip(original, adversarial) if a != b)
    matcher = difflib.SequenceMatcher(a=original, b=adversarial, autojunk=False)
    changes = 0
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "replace":
            changes += max(i2 - i1, j2 - j1)
        elif tag == "delete":
            changes += i2 - i1
        elif tag == "insert":
            changes += j2 - j1
    return changes


@dataclass
class AttackResult:
    """Outcome of attacking one document."""

    original: list[str]
    adversarial: list[str]
    target_label: int
    original_prob: float  # C_y before the attack
    adversarial_prob: float  # C_y after the attack
    success: bool  # adversarial prediction == target label
    n_word_changes: int = 0
    n_sentence_changes: int = 0
    n_queries: int = 0  # model forwards actually paid
    n_cache_hits: int = 0  # scores served from the per-call ScoreCache
    n_cache_evictions: int = 0  # entries dropped by a bounded ScoreCache
    wall_time: float = 0.0
    stages: list[str] = field(default_factory=list)  # e.g. ["sentence", "word"]

    @property
    def prob_gain(self) -> float:
        return self.adversarial_prob - self.original_prob

    def to_dict(self) -> dict:
        """JSON-safe payload that round-trips bitwise through :meth:`from_dict`.

        Every field is a str/int/bool/float; ``json`` serializes floats via
        ``repr`` so probabilities and wall-times survive a journal round-trip
        exactly.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackResult":
        return cls(
            original=list(payload["original"]),
            adversarial=list(payload["adversarial"]),
            target_label=int(payload["target_label"]),
            original_prob=float(payload["original_prob"]),
            adversarial_prob=float(payload["adversarial_prob"]),
            success=bool(payload["success"]),
            n_word_changes=int(payload["n_word_changes"]),
            n_sentence_changes=int(payload["n_sentence_changes"]),
            n_queries=int(payload["n_queries"]),
            n_cache_hits=int(payload["n_cache_hits"]),
            # absent in journals written before bounded caches existed
            n_cache_evictions=int(payload.get("n_cache_evictions", 0)),
            wall_time=float(payload["wall_time"]),
            stages=list(payload["stages"]),
        )


@dataclass
class AttackFailure:
    """Structured record of a document whose attack did not complete.

    Produced by the fault-tolerant corpus runner instead of letting one
    pathological document (an attack that raises, or one that kills its
    worker process) abort the whole run.  Carries everything needed to
    reproduce the failure in isolation: the document, the target label,
    and the exact per-document seed the runner used.
    """

    doc_index: int  # seed index within the run (see parallel._document_seed)
    target_label: int
    error_type: str  # exception class name, e.g. "RuntimeError"
    error_message: str
    traceback: str  # formatted traceback; empty for worker crashes
    seed: int  # the per-document seed in effect when the attack failed
    original: list[str] = field(default_factory=list)

    #: failed attacks never flip the prediction; mirroring
    #: :attr:`AttackResult.success` lets aggregation code treat a mixed
    #: outcome list uniformly
    @property
    def success(self) -> bool:
        return False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackFailure":
        return cls(
            doc_index=int(payload["doc_index"]),
            target_label=int(payload["target_label"]),
            error_type=str(payload["error_type"]),
            error_message=str(payload["error_message"]),
            traceback=str(payload["traceback"]),
            seed=int(payload["seed"]),
            original=list(payload["original"]),
        )


class Attack:
    """Base class: owns the victim model and counts its queries.

    ``use_cache`` enables the per-call :class:`ScoreCache`; it is
    automatically suppressed whenever scoring is stochastic (victim in
    training mode or with ``inference_dropout`` active), so Bayesian-dropout
    scores are never memoized.  ``cache_max_entries`` bounds that cache
    (``None`` = unbounded, the default).

    Observability hooks (all optional, all off by default):

    - ``tracer`` — a :class:`~repro.obs.trace.TraceRecorder`; the corpus
      runner installs a per-document trace on ``_trace`` directly, while
      direct ``attack()`` calls self-open one via ``tracer.next_index()``;
    - ``profiler`` — a :class:`~repro.obs.spans.PhaseProfiler` whose
      spans time the forward / candidate-gen / greedy-select phases.

    ``score_fn`` (a *ScoreBatchFn*, ``docs -> (n, C) probabilities``)
    reroutes the scoring forwards of :meth:`_score_batch` — e.g. to the
    shared scoring service of :mod:`repro.eval.scoring_service` — while
    gradients and the final verdict forward stay on the local model.
    """

    name = "attack"

    # class-level defaults so instances unpickled from old journals or
    # constructed by subclasses that bypass __init__ still have the hooks
    tracer = None
    profiler = None
    _trace = None
    score_fn = None

    def __init__(
        self,
        model: TextClassifier,
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        self.model = model
        self.use_cache = use_cache
        self.cache_max_entries = cache_max_entries
        self._queries = 0
        self._cache_hits = 0
        self._cache: ScoreCache | None = None
        self._cache_evictions = 0
        self.tracer = None
        self.profiler = None
        self._trace = None
        self.score_fn = None

    def reseed(self, seed: int) -> None:
        """Reset every RNG stream this attack owns to a function of ``seed``.

        The parallel corpus runner calls this with a per-*document* seed
        before each attack so stochastic attacks produce identical results
        no matter how documents are sharded across workers (1 worker and N
        workers must agree).  Streams are discovered by introspection —
        ``np.random.Generator`` attributes are replaced, plain ``seed``
        integer attributes are rewritten, and sub-attacks (the joint
        attack's stages) are reseeded recursively — so new attacks get
        deterministic sharding for free.
        """
        reseed_object(self, seed)

    # -- observability hooks ------------------------------------------------
    def set_profiler(self, profiler) -> None:
        """Attach a phase profiler to this attack and its sub-attacks."""
        self.profiler = profiler
        for value in vars(self).values():
            if isinstance(value, Attack) and value is not self:
                value.set_profiler(profiler)

    def set_score_fn(self, score_fn) -> None:
        """Attach (or with ``None`` detach) a scoring-forward override.

        Recurses into sub-attacks (the joint attack's stages) so every
        ``_score_batch`` in the composition routes the same way.
        """
        self.score_fn = score_fn
        for value in vars(self).values():
            if isinstance(value, Attack) and value is not self:
                value.set_score_fn(score_fn)

    def _span(self, name: str):
        """Profiler span context, or a no-op when no profiler is attached."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.span(name)

    def _trace_event(self, kind: str, **fields) -> None:
        """Emit one trace event; a single ``None`` check when tracing is off."""
        if self._trace is not None:
            self._trace.emit(kind, **fields)

    def _caching_allowed(self) -> bool:
        """Memoization is sound only for deterministic scoring.

        Duck-typed: wrappers like ``SmoothedClassifier`` expose neither
        ``training`` nor ``inference_dropout`` but are deterministic per
        document by construction, so missing attributes count as safe.
        """
        if not self.use_cache:
            return False
        if getattr(self.model, "training", False):
            return False
        return not getattr(self.model, "inference_dropout", 0.0)

    # -- model access with query accounting --------------------------------
    def _predict_proba(
        self, docs: list[list[str]], base: list[str] | None = None
    ) -> np.ndarray:
        """Scoring forward: the attached ``score_fn``, else the local model.

        ``base`` is the incumbent document the candidates are single-edit
        variants of; it is forwarded only to score functions advertising
        ``accepts_base`` (the delta scorer, the delta-aware service client),
        which use it to score candidates incrementally.  Plain score
        functions and the local model ignore it.
        """
        fn = self.score_fn
        if fn is not None:
            if base is not None and getattr(fn, "accepts_base", False):
                return fn(docs, base=base)
            return fn(docs)
        return self.model.predict_proba(docs)

    def _delta_trace_fields(self) -> dict:
        """Extra ``forward``-event fields from a delta-aware score function."""
        pop = getattr(self.score_fn, "pop_stats", None)
        if pop is None:
            return {}
        return pop() or {}

    def _score_batch(
        self,
        docs: list[list[str]],
        target_label: int,
        base: list[str] | None = None,
    ) -> list[float]:
        """``C_y`` for a batch of candidate documents (deduped + memoized).

        ``base`` (optional) is the incumbent the candidates were derived
        from; see :meth:`_predict_proba`.  Delta-scored candidates still
        count as paid forwards in ``n_queries`` — incremental evaluation
        changes what a query *costs*, not how many are accounted.
        """
        if not docs:
            return []
        cache = self._cache
        if cache is None:
            self._queries += len(docs)
            with self._span("forward"):
                probs = self._predict_proba(docs, base=base)
            self._trace_event(
                "forward",
                op="score",
                n_docs=len(docs),
                n_forwards=len(docs),
                n_cache_hits=0,
                **self._delta_trace_fields(),
            )
            return probs[:, target_label].tolist()
        # order-preserving dedup of the request, then forward only misses
        unique: dict[tuple, list[str]] = {}
        for doc in docs:
            unique.setdefault(score_key(doc, target_label), list(doc))
        scores: dict[tuple, float] = {}
        missing: list[tuple] = []
        for key in unique:
            cached = cache.get(key)
            if cached is None:
                missing.append(key)
            else:
                scores[key] = cached
        delta_fields: dict = {}
        if missing:
            with self._span("forward"):
                probs = self._predict_proba([unique[key] for key in missing], base=base)
            delta_fields = self._delta_trace_fields()
            self._queries += len(missing)
            for key, p in zip(missing, probs[:, target_label].tolist()):
                cache.put(key, p)
                scores[key] = p
        served = len(docs) - len(missing)
        self._cache_hits += served
        self._trace_event(
            "forward",
            op="score",
            n_docs=len(docs),
            n_forwards=len(missing),
            n_cache_hits=served,
            **delta_fields,
        )
        if served:
            self._trace_event("cache_hit", n_hits=served)
        return [scores[score_key(doc, target_label)] for doc in docs]

    def _score(self, doc: Sequence[str], target_label: int) -> float:
        return self._score_batch([list(doc)], target_label)[0]

    # -- template method -------------------------------------------------------
    def attack(self, doc: Sequence[str], target_label: int) -> AttackResult:
        """Run the attack; concrete classes implement :meth:`_run`."""
        if target_label not in (0, 1):
            raise ValueError(f"target label must be 0 or 1, got {target_label}")
        doc = list(doc)
        if not doc:
            raise ValueError("cannot attack an empty document")
        # the corpus runner installs a per-document trace on _trace; direct
        # attack() calls self-open one (and then own its close) when a
        # TraceRecorder is attached
        opened_here = False
        if self._trace is None and self.tracer is not None:
            self._trace = self.tracer.document(self.tracer.next_index())
            opened_here = True
        self._queries = 0
        self._cache_hits = 0
        self._cache_evictions = 0
        self._cache = (
            ScoreCache(max_entries=self.cache_max_entries)
            if self._caching_allowed()
            else None
        )
        self._trace_event(
            "attack_start",
            attack=self.name,
            target_label=int(target_label),
            n_tokens=len(doc),
            seed=getattr(self._trace, "seed", None),
        )
        start = time.perf_counter()
        try:
            try:
                original_prob = self._score(doc, target_label)
                adversarial, stages = self._run(doc, target_label)
            finally:
                if self._cache is not None:
                    self._cache_evictions = self._cache.evictions
                self._cache = None  # scores are only valid within one call
            # Success is judged with deterministic inference: if the victim
            # uses Bayesian (inference-time) dropout during the *search* — the
            # paper's WCNN setting (Sec. 6.4) — the verdict must not depend on
            # one noisy sample.
            inference_dropout = getattr(self.model, "inference_dropout", 0.0)
            if inference_dropout:
                self.model.inference_dropout = 0.0
            try:
                adv_probs = self.model.predict_proba([adversarial])[0]
            finally:
                if inference_dropout:
                    self.model.inference_dropout = inference_dropout
            elapsed = time.perf_counter() - start
            result = AttackResult(
                original=doc,
                adversarial=adversarial,
                target_label=target_label,
                original_prob=original_prob,
                adversarial_prob=float(adv_probs[target_label]),
                success=bool(adv_probs.argmax() == target_label),
                n_word_changes=count_word_changes(doc, adversarial),
                n_sentence_changes=stages.count("sentence"),
                n_queries=self._queries,
                n_cache_hits=self._cache_hits,
                n_cache_evictions=self._cache_evictions,
                wall_time=elapsed,
                stages=sorted(set(stages)),
            )
            self._trace_event(
                "attack_end",
                success=result.success,
                n_queries=result.n_queries,
                n_cache_hits=result.n_cache_hits,
                wall_time=round(result.wall_time, 6),
                n_word_changes=result.n_word_changes,
                adversarial_prob=result.adversarial_prob,
            )
            return result
        except Exception as exc:
            self._trace_event(
                "attack_error",
                error_type=type(exc).__name__,
                error_message=str(exc),
            )
            raise
        finally:
            if opened_here:
                trace, self._trace = self._trace, None
                if trace is not None:
                    trace.close()

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        """Return (adversarial tokens, stage tags). Implemented by subclasses."""
        raise NotImplementedError
