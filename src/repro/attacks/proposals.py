"""Candidate sources — the "what can change" axis of Problem 1.

The paper's framework is compositional: pick a candidate set (synonym
paraphrases, sentence paraphrases, character flips, ...), then maximize
the attack objective over subsets of it with some search procedure.  This
module owns the first axis.  A :class:`CandidateSource` indexes one
document into a :class:`Proposal` — a uniform view of the per-position
moves (the ``W_i`` of Alg. 1 step 7 or the ``S_i`` of step 3) plus the
``m``-constraint budget — which any :mod:`repro.attacks.search` strategy
can then consume.  Word-level and sentence-level transformations differ
only in what a "unit" is and whether a replaced position is consumed
(words: yes, the budget counts distinct positions; sentences: no, a
sentence restored to its original refunds its budget), so every strategy
is written once against the :class:`Proposal` interface.

Sources never touch the victim model directly; anything that needs
forwards or gradients (e.g. :class:`GradientRankedSource`) goes through
the engine's accounting helpers so queries and traces stay correct.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.attacks.base import reseed_object
from repro.attacks.charflip import CharFlipCandidates
from repro.text.sentence import join_sentences
from repro.text.transformations import apply_word_substitutions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attacks.engine import AttackEngine

__all__ = [
    "Proposal",
    "WordProposal",
    "GumbelWordProposal",
    "SentenceProposal",
    "CandidateSource",
    "WordParaphraseSource",
    "CharFlipSource",
    "SentenceParaphraseSource",
    "GradientRankedSource",
    "GumbelSource",
]


class Proposal:
    """One document, indexed: per-position candidate moves + budget.

    ``state`` objects are opaque to search strategies — they are created by
    :meth:`initial_state`, advanced with :meth:`apply`/:meth:`apply_many`,
    and rendered to scoreable tokens with :meth:`tokens`.  Strategies track
    the transformation support (the ``supp(l)`` charged against ``budget``)
    as a plain set of positions, updated through :meth:`update_support`.
    """

    #: stage tag recorded on AttackResult.stages / greedy_iteration events
    stage: str = "word"
    #: True when a changed position is consumed (word attacks: one
    #: paraphrase per position); False when a later move may restore the
    #: original unit and refund the budget (sentence attacks)
    consumes_positions: bool = True
    #: the m-constraint: max positions in the transformation support
    budget: int = 0

    def initial_state(self):
        raise NotImplementedError

    def positions(self) -> list[int]:
        """Attackable positions, in scan order."""
        raise NotImplementedError

    def moves_at(self, position: int) -> list:
        """Candidate moves for one position (Alg. 1's ``W_i`` / ``S_i``)."""
        raise NotImplementedError

    def unit(self, state, position: int):
        """The current unit (word / sentence) at ``position``."""
        raise NotImplementedError

    def apply(self, state, position: int, move):
        """A new state with ``move`` applied at ``position``."""
        raise NotImplementedError

    def apply_many(self, state, substitutions: dict):
        """A new state with ``{position: move}`` applied."""
        out = state
        for position in sorted(substitutions):
            out = self.apply(out, position, substitutions[position])
        return out

    def tokens(self, state) -> list[str]:
        """The state as a flat token list — the form the victim scores."""
        raise NotImplementedError

    def move_key(self, move):
        """Hashable identity of a move (for dedup in beam search)."""
        raise NotImplementedError

    def admissible_moves(self, state, support: set[int]) -> list[tuple[int, object]]:
        """All (position, move) pairs extending the incumbent, in scan order."""
        out: list[tuple[int, object]] = []
        for j in self.positions():
            if self.consumes_positions and j in support:
                continue
            for move in self.moves_at(j):
                if move != self.unit(state, j):
                    out.append((j, move))
        return out

    def update_support(self, support: set[int], state, position: int) -> None:
        """Account a just-applied move at ``position`` against the budget."""
        support.add(position)


class WordProposal(Proposal):
    """Word substitutions over :class:`~repro.text.transformations.WordNeighborSets`."""

    stage = "word"
    consumes_positions = True

    def __init__(self, doc: Sequence[str], neighbor_sets, budget: int) -> None:
        self.doc = list(doc)
        self.neighbor_sets = neighbor_sets
        self.budget = budget

    def initial_state(self) -> list[str]:
        return list(self.doc)

    def positions(self) -> list[int]:
        return self.neighbor_sets.attackable_positions

    def moves_at(self, position: int) -> list[str]:
        return self.neighbor_sets[position]

    def unit(self, state: list[str], position: int) -> str:
        return state[position]

    def apply(self, state: list[str], position: int, move: str) -> list[str]:
        return apply_word_substitutions(state, {position: move})

    def apply_many(self, state: list[str], substitutions: dict[int, str]) -> list[str]:
        return apply_word_substitutions(state, substitutions)

    def tokens(self, state: list[str]) -> list[str]:
        return state

    def move_key(self, move: str) -> str:
        return move


class GumbelWordProposal(WordProposal):
    """A :class:`WordProposal` restricted to a sampled position subset.

    Produced by :class:`GumbelSource`: the full neighbor sets are kept (so
    moves at a sampled position are unchanged) but :meth:`positions` only
    exposes the positions the fitted distribution sampled, shrinking every
    downstream search space.
    """

    def __init__(
        self,
        doc: Sequence[str],
        neighbor_sets,
        budget: int,
        sampled_positions: Sequence[int],
    ) -> None:
        super().__init__(doc, neighbor_sets, budget)
        self.sampled_positions = list(sampled_positions)

    def positions(self) -> list[int]:
        return self.sampled_positions


class SentenceProposal(Proposal):
    """Whole-sentence paraphrases; a state is a list of sentences.

    Positions are *not* consumed: re-paraphrasing a sentence back to its
    original refunds the budget, mirroring Alg. 2's ``λ_s · l`` constraint
    on *currently paraphrased* sentences.
    """

    stage = "sentence"
    consumes_positions = False

    def __init__(self, sentences: list[list[str]], neighbor_sets, budget: int) -> None:
        self.original = [list(s) for s in sentences]
        self.neighbor_sets = neighbor_sets
        self.budget = budget

    def initial_state(self) -> list[list[str]]:
        return [list(s) for s in self.original]

    def positions(self) -> list[int]:
        return self.neighbor_sets.attackable_sentences

    def moves_at(self, position: int) -> list[list[str]]:
        return self.neighbor_sets[position]

    def unit(self, state: list[list[str]], position: int) -> list[str]:
        return state[position]

    def apply(self, state: list[list[str]], position: int, move: list[str]) -> list[list[str]]:
        return state[:position] + [list(move)] + state[position + 1 :]

    def tokens(self, state: list[list[str]]) -> list[str]:
        return join_sentences(state)

    def move_key(self, move: list[str]) -> tuple[str, ...]:
        return tuple(move)

    def update_support(self, support: set[int], state, position: int) -> None:
        if state[position] == self.original[position]:
            support.discard(position)
        else:
            support.add(position)


class CandidateSource:
    """Builds a :class:`Proposal` for one document.

    ``kind`` names the transformation family in the registry / CLI.
    Sources are picklable (plain attributes only) so attack specs cross
    the fork pool, and carry the ``_reseed_recurse`` marker so the
    engine's introspective :meth:`~repro.attacks.base.Attack.reseed`
    resets any RNG streams they own.
    """

    kind = "source"
    _reseed_recurse = True

    def index(self, engine: "AttackEngine", doc: list[str]) -> Proposal:
        raise NotImplementedError

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)


class WordParaphraseSource(CandidateSource):
    """Synonym word paraphrases (Alg. 1 step 7) from a ``WordParaphraser``.

    Any object with ``neighbor_sets(tokens) -> WordNeighborSets`` works —
    the same duck typing the attack constructors always accepted.
    """

    kind = "word-paraphrase"

    def __init__(self, paraphraser, word_budget_ratio: float = 0.2) -> None:
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio

    def index(self, engine: "AttackEngine", doc: list[str]) -> WordProposal:
        with engine.span("candidate-gen"):
            neighbor_sets = self.paraphraser.neighbor_sets(doc)
        return WordProposal(doc, neighbor_sets, int(self.word_budget_ratio * len(doc)))


class CharFlipSource(WordParaphraseSource):
    """Character-edit candidates (paper Remark 2, HotFlip-style).

    A :class:`~repro.attacks.charflip.CharFlipCandidates` generator in
    source clothing; pass one to customize operations/caps.
    """

    kind = "char-flip"

    def __init__(self, generator=None, word_budget_ratio: float = 0.2) -> None:
        super().__init__(generator or CharFlipCandidates(), word_budget_ratio)


class SentenceParaphraseSource(CandidateSource):
    """Sentence paraphrases (Alg. 1 step 3) from a ``SentenceParaphraser``."""

    kind = "sentence-paraphrase"

    def __init__(self, paraphraser, sentence_budget_ratio: float = 0.2) -> None:
        if not 0.0 <= sentence_budget_ratio <= 1.0:
            raise ValueError("sentence_budget_ratio must be in [0, 1]")
        self.paraphraser = paraphraser
        self.sentence_budget_ratio = sentence_budget_ratio

    def index(self, engine: "AttackEngine", doc: list[str]) -> SentenceProposal:
        with engine.span("candidate-gen"):
            sentences, neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(round(self.sentence_budget_ratio * len(sentences)))
        return SentenceProposal([list(s) for s in sentences], neighbor_sets, budget)


class GradientRankedSource(CandidateSource):
    """A word source whose positions are ranked by first-order scores.

    Wraps an inner word-level source and adds :meth:`rank_positions` — the
    Gauss–Southwell position selection of Alg. 3 step 4 — for strategies
    that preselect where to search (:class:`~repro.attacks.search.GaussSouthwellSearch`).

    Three selection rules (ablated in the benchmarks):

    - ``"modular"`` (default): the Proposition-2 weight
      ``w_i = max_t (V(x_i^{(t)}) − V(x_i)) · ∇_i`` — the first-order
      estimate of the gain *realizable by the actual candidates*;
    - ``"gs_norm"``: the raw Gauss–Southwell score ``‖∇_i C_y‖₂`` as
      written in Alg. 3 step 4, which measures sensitivity in *any*
      direction, including ones no candidate realizes;
    - ``"random"``: uniformly random positions (the no-gradient control
      from the Gauss–Southwell literature).
    """

    kind = "gradient-ranked"

    def __init__(self, inner: WordParaphraseSource, selection: str = "modular") -> None:
        if selection not in ("modular", "gs_norm", "random"):
            raise ValueError("selection must be 'modular', 'gs_norm' or 'random'")
        self.inner = inner
        self.selection = selection
        self._selection_rng = np.random.default_rng(0)

    def index(self, engine: "AttackEngine", doc: list[str]) -> WordProposal:
        return self.inner.index(engine, doc)

    def rank_positions(
        self,
        engine: "AttackEngine",
        proposal: WordProposal,
        current: list[str],
        target_label: int,
        changed: set[int],
        remaining_budget: int,
        words_per_iteration: int,
        skip: int = 0,
    ) -> tuple[list[int], dict[int, list[str]]]:
        """N attackable positions by first-order score, after ``skip``.

        ``skip`` implements the fallback: when the top-N batch produced no
        improvement, the caller retries with the next batch down the
        gradient ranking instead of giving up (positions the greedy scan
        would eventually reach anyway).  Returns the selected positions
        plus, for ``"modular"``, per-position candidate lists ranked by
        estimated gain (keeps the joint product small without losing the
        best moves).
        """
        model = engine.model
        n = min(len(current), model.max_len)
        candidate_order: dict[int, list[str]] = {}
        if self.selection == "random":
            scores = self._selection_rng.random(n)
        else:
            gradient = engine.gradient(current, target_label)
            if self.selection == "gs_norm":
                scores = np.linalg.norm(gradient, axis=1)
            else:  # modular
                emb = model.embedding.weight.data
                vocab = model.vocab
                scores = np.zeros(n)
                for i in range(n):
                    orig = emb[vocab.id(current[i])]
                    gains = [
                        (float((emb[vocab.id(cand)] - orig) @ gradient[i]), cand)
                        for cand in proposal.moves_at(i)
                    ]
                    if gains:
                        gains.sort(key=lambda gc: -gc[0])
                        scores[i] = max(0.0, gains[0][0])
                        candidate_order[i] = [c for _, c in gains]
        attackable = [i for i in proposal.positions() if i < len(scores)]
        # Unchanged positions consume budget; already-changed positions may
        # be re-paraphrased for free. Prefer high-gradient positions either way.
        ranked = sorted(attackable, key=lambda i: -scores[i])[skip:]
        selected: list[int] = []
        budget_left = remaining_budget - len(changed)
        for i in ranked:
            if len(selected) >= words_per_iteration:
                break
            if i in changed:
                selected.append(i)
            elif budget_left > 0:
                selected.append(i)
                budget_left -= 1
        return selected, candidate_order


class GumbelSource(CandidateSource):
    """Learned parameterized position sampler — the Gumbel attack source
    (Yang, Chen et al., arXiv:1805.12316).

    Instead of searching every attackable position, fit a sampling
    distribution over positions from a handful of *probe* forwards, then
    draw a subset via the Gumbel-top-k trick and hand downstream search a
    :class:`GumbelWordProposal` restricted to it:

    1. **Probe** — perturb ``n_probes`` randomly chosen positions (one
       random candidate each) and score them in one batch through the
       engine, so the forwards are counted, cached and traced like any
       other query.
    2. **Fit** — per-position logits are the observed objective gains over
       the unperturbed score, divided by ``temperature``; unprobed
       positions get the mean probed gain as a neutral prior.
    3. **Sample** — add i.i.d. Gumbel noise to the logits and keep the
       top ``ceil(keep_ratio · n_attackable)`` positions (Gumbel-top-k is
       exactly sampling-without-replacement from the softmax).

    ``needs_target`` routes the target label through
    :meth:`AttackEngine.index`; the probe RNG is a ``Generator`` attribute,
    so per-document reseeding gives bitwise 1-vs-N-worker parity.
    """

    kind = "gumbel-word"
    needs_target = True

    def __init__(
        self,
        paraphraser,
        word_budget_ratio: float = 0.2,
        n_probes: int = 8,
        temperature: float = 0.1,
        keep_ratio: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        if n_probes < 0:
            raise ValueError("n_probes must be >= 0")
        if temperature <= 0.0:
            raise ValueError("temperature must be > 0")
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in (0, 1]")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.n_probes = n_probes
        self.temperature = temperature
        self.keep_ratio = keep_ratio
        self._rng = np.random.default_rng(seed)

    def index(
        self,
        engine: "AttackEngine",
        doc: list[str],
        target_label: int | None = None,
    ) -> GumbelWordProposal:
        with engine.span("candidate-gen"):
            neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        proposal = WordProposal(doc, neighbor_sets, budget)
        positions = [j for j in proposal.positions() if proposal.moves_at(j)]
        keep = max(1, int(np.ceil(self.keep_ratio * len(positions)))) if positions else 0
        if target_label is None or self.n_probes == 0 or len(positions) <= keep:
            return GumbelWordProposal(doc, neighbor_sets, budget, positions)
        # probe: one random candidate at each of n_probes random positions
        probe_order = self._rng.permutation(len(positions))[: self.n_probes]
        probe_positions = [positions[int(i)] for i in probe_order]
        probes = [
            proposal.apply(list(doc), j, str(self._rng.choice(proposal.moves_at(j))))
            for j in probe_positions
        ]
        base = engine.score(list(doc), target_label)
        probe_scores = engine.score_batch(probes, target_label, base=list(doc))
        gains = {j: s - base for j, s in zip(probe_positions, probe_scores)}
        prior = float(np.mean(list(gains.values()))) if gains else 0.0
        logits = (
            np.array([gains.get(j, prior) for j in positions]) / self.temperature
        )
        noisy = logits + self._rng.gumbel(size=len(positions))
        order = np.argsort(-noisy, kind="stable")
        sampled = sorted(positions[int(i)] for i in order[:keep])
        return GumbelWordProposal(doc, neighbor_sets, budget, sampled)
