"""Objective-guided greedy word attack — the Kuleshov et al. [19] baseline.

One word per iteration: scan every (position, candidate) pair, apply the
single substitution that most increases ``C_y``, repeat until the
termination threshold τ is reached or the word budget ``λ_w · n`` is
exhausted.  This is exactly greedy maximization of the attack set function
with the inner maximum restricted to extending the incumbent transformation
(the practical variant the paper compares against in Table 3).

Two search strategies:

- ``"scan"`` (default): the textbook full rescan every round;
- ``"lazy"``: CELF/Minoux lazy greedy via
  :class:`~repro.submodular.greedy.LazyMarginalHeap`.  The first round
  scores every pair in one batch (identical to scan); later rounds
  re-evaluate only candidates whose stale upper bound reaches the top of
  the heap.  Exact when the attack objective is submodular (the regime of
  Thms. 1-2, which ``submodular.empirical`` verifies on these victims);
  in general a fast approximation of scan with the same budget/τ
  semantics.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.transformations import apply_word_substitutions
from repro.models.base import TextClassifier
from repro.submodular.greedy import LazyMarginalHeap

__all__ = ["ObjectiveGreedyWordAttack"]


class ObjectiveGreedyWordAttack(Attack):
    """Greedy-by-objective word substitution (one word per iteration)."""

    name = "objective-greedy"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
        strategy: str = "scan",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        super().__init__(
            model, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if strategy not in ("scan", "lazy"):
            raise ValueError("strategy must be 'scan' or 'lazy'")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.tau = tau
        self.strategy = strategy

    def _pairs(self, current: list[str], neighbor_sets, changed: set[int]):
        """All admissible (position, word) moves from the incumbent."""
        for j in neighbor_sets.attackable_positions:
            if j in changed:
                continue
            for word in neighbor_sets[j]:
                if current[j] != word:
                    yield j, word

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        if self.strategy == "lazy":
            return self._run_lazy(doc, target_label)
        with self._span("candidate-gen"):
            neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        current = list(doc)
        current_score = self._score(current, target_label)
        changed: set[int] = set()
        stages: list[str] = []
        while current_score < self.tau and len(changed) < budget:
            # one paraphrase per position: changed positions are consumed
            pairs = list(self._pairs(current, neighbor_sets, changed))
            if not pairs:
                break
            candidates = [
                apply_word_substitutions(current, {j: word}) for j, word in pairs
            ]
            with self._span("greedy-select"):
                scores = self._score_batch(candidates, target_label)
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= current_score + 1e-12:
                break
            self._trace_event(
                "greedy_iteration",
                stage="word",
                iteration=len(stages),
                positions=[pairs[best][0]],
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - current_score,
                rescans=0,
            )
            current = candidates[best]
            current_score = scores[best]
            changed.add(pairs[best][0])
            stages.append("word")
        return current, stages

    def _run_lazy(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        """CELF variant: stale-bound heap instead of full rescans."""
        with self._span("candidate-gen"):
            neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        current = list(doc)
        current_score = self._score(current, target_label)
        changed: set[int] = set()
        stages: list[str] = []
        if budget == 0 or current_score >= self.tau:
            return current, stages
        def rebuild_heap() -> LazyMarginalHeap | None:
            """Exact gains for every admissible pair, in one batched scan."""
            pairs = list(self._pairs(current, neighbor_sets, changed))
            if not pairs:
                return None
            scores = self._score_batch(
                [apply_word_substitutions(current, {j: word}) for j, word in pairs],
                target_label,
            )
            heap = LazyMarginalHeap()
            heap.push_all(
                (pair, score - current_score) for pair, score in zip(pairs, scores)
            )
            return heap

        # round 1 = scan: seed the heap with exact gains from one batch
        heap = rebuild_heap()
        fresh_heap = True
        while heap is not None and current_score < self.tau and len(changed) < budget:
            rescans = 0

            def fresh_gain(pair: tuple[int, str]) -> float | None:
                nonlocal rescans
                rescans += 1
                j, word = pair
                if j in changed or current[j] == word:
                    return None  # position consumed
                candidate = apply_word_substitutions(current, {j: word})
                return self._score_batch([candidate], target_label)[0] - current_score

            with self._span("greedy-select"):
                n_candidates = len(heap)
                picked = heap.select(fresh_gain, tolerance=1e-12)
            if picked is None:
                # Stale bounds say nothing improves.  They are only upper
                # bounds under submodularity, which holds empirically but
                # not exactly — so verify with one batched rescan of the
                # incumbent before giving up.
                if fresh_heap:
                    break
                heap = rebuild_heap()
                fresh_heap = True
                continue
            (j, word), gain = picked
            current = apply_word_substitutions(current, {j: word})
            current_score += gain
            self._trace_event(
                "greedy_iteration",
                stage="word",
                iteration=len(stages),
                positions=[j],
                n_candidates=n_candidates,
                best_objective=current_score,
                marginal_gain=gain,
                rescans=rescans,
            )
            changed.add(j)
            stages.append("word")
            fresh_heap = False
        return current, stages
