"""Objective-guided greedy word attack — the Kuleshov et al. [19] baseline.

One word per iteration: scan every (position, candidate) pair, apply the
single substitution that most increases ``C_y``, repeat until the
termination threshold τ is reached or the word budget ``λ_w · n`` is
exhausted.  This is exactly greedy maximization of the attack set function
with the inner maximum restricted to extending the incumbent transformation
(the practical variant the paper compares against in Table 3).

Composition: :class:`~repro.attacks.proposals.WordParaphraseSource` ×
:class:`~repro.attacks.search.GreedySearch` (``strategy="scan"``) or
:class:`~repro.attacks.search.LazyGreedySearch` (``strategy="lazy"``,
CELF/Minoux via :class:`~repro.submodular.greedy.LazyMarginalHeap`).
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.proposals import WordParaphraseSource
from repro.attacks.search import GreedySearch, LazyGreedySearch
from repro.models.base import TextClassifier

__all__ = ["ObjectiveGreedyWordAttack"]


class ObjectiveGreedyWordAttack(AttackEngine):
    """Greedy-by-objective word substitution (one word per iteration)."""

    name = "objective-greedy"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
        strategy: str = "scan",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        if strategy not in ("scan", "lazy"):
            raise ValueError("strategy must be 'scan' or 'lazy'")
        source = WordParaphraseSource(paraphraser, word_budget_ratio)
        search = GreedySearch(tau) if strategy == "scan" else LazyGreedySearch(tau)
        super().__init__(
            model, source, search, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        self.strategy = strategy

    # public config, mirrored from the composed layers
    @property
    def paraphraser(self):
        return self.source.paraphraser

    @property
    def word_budget_ratio(self) -> float:
        return self.source.word_budget_ratio

    @property
    def tau(self) -> float:
        return self.search.tau
