"""Objective-guided greedy word attack — the Kuleshov et al. [19] baseline.

One word per iteration: scan every (position, candidate) pair, apply the
single substitution that most increases ``C_y``, repeat until the
termination threshold τ is reached or the word budget ``λ_w · n`` is
exhausted.  This is exactly greedy maximization of the attack set function
with the inner maximum restricted to extending the incumbent transformation
(the practical variant the paper compares against in Table 3).
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.transformations import apply_word_substitutions
from repro.models.base import TextClassifier

__all__ = ["ObjectiveGreedyWordAttack"]


class ObjectiveGreedyWordAttack(Attack):
    """Greedy-by-objective word substitution (one word per iteration)."""

    name = "objective-greedy"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
    ) -> None:
        super().__init__(model)
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.tau = tau

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        current = list(doc)
        current_score = self._score(current, target_label)
        changed: set[int] = set()
        stages: list[str] = []
        while current_score < self.tau and len(changed) < budget:
            candidates: list[list[str]] = []
            meta: list[int] = []
            # one paraphrase per position: changed positions are consumed
            for j in neighbor_sets.attackable_positions:
                if j in changed:
                    continue
                for word in neighbor_sets[j]:
                    if current[j] == word:
                        continue
                    candidates.append(apply_word_substitutions(current, {j: word}))
                    meta.append(j)
            if not candidates:
                break
            scores = self._score_batch(candidates, target_label)
            best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= current_score + 1e-12:
                break
            current = candidates[best]
            current_score = scores[best]
            changed.add(meta[best])
            stages.append("word")
        return current, stages
