"""Random-substitution baseline.

Replaces up to ``λ_w · n`` random attackable positions with random
candidates.  The weakest sensible baseline; its gap to greedy quantifies
how much the guided search matters (ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.transformations import apply_word_substitutions
from repro.models.base import TextClassifier

__all__ = ["RandomWordAttack"]


class RandomWordAttack(Attack):
    """Uniformly random word substitutions within the budget."""

    name = "random"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        seed: int = 0,
    ) -> None:
        super().__init__(model)
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.seed = seed

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        rng = np.random.default_rng(self.seed)
        positions = neighbor_sets.attackable_positions
        if not positions or budget == 0:
            return list(doc), []
        chosen = rng.choice(positions, size=min(budget, len(positions)), replace=False)
        substitutions = {
            int(i): str(rng.choice(neighbor_sets[int(i)])) for i in chosen
        }
        stages = ["word"] * len(substitutions)
        return apply_word_substitutions(doc, substitutions), stages
