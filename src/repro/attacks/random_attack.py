"""Random-substitution baseline.

Replaces up to ``λ_w · n`` random attackable positions with random
candidates.  The weakest sensible baseline; its gap to greedy quantifies
how much the guided search matters (ablation benchmark).

Composition: :class:`~repro.attacks.proposals.WordParaphraseSource` ×
:class:`~repro.attacks.search.RandomSearch`.
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.proposals import WordParaphraseSource
from repro.attacks.search import RandomSearch
from repro.models.base import TextClassifier

__all__ = ["RandomWordAttack"]


class RandomWordAttack(AttackEngine):
    """Uniformly random word substitutions within the budget."""

    name = "random"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        seed: int = 0,
    ) -> None:
        source = WordParaphraseSource(paraphraser, word_budget_ratio)
        super().__init__(model, source, RandomSearch(seed))

    @property
    def paraphraser(self):
        return self.source.paraphraser

    @property
    def word_budget_ratio(self) -> float:
        return self.source.word_budget_ratio

    @property
    def seed(self) -> int:
        return self.search.seed

    @seed.setter
    def seed(self, value: int) -> None:
        self.search.seed = value
