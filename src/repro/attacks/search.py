"""Search strategies — the "how to search" axis of Problem 1.

Each strategy maximizes the attack objective ``C_y`` over transformations
drawn from a :class:`~repro.attacks.proposals.Proposal`, under the
proposal's ``m``-constraint and the engine's τ / query-budget termination.
Strategies are model-agnostic: every forward goes through the engine's
scoring choke point (:meth:`~repro.attacks.engine.AttackEngine.score_batch`)
and every gradient through :meth:`~repro.attacks.engine.AttackEngine.gradient`,
so caching, query accounting, spans and trace events are uniform across
all source × strategy combinations.

The greedy variants delegate stale-bound bookkeeping to
:class:`repro.submodular.greedy.LazyMarginalHeap` — the same CELF/Minoux
machinery the set-function layer uses — instead of duplicating it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.attacks.base import reseed_object
from repro.submodular.greedy import LazyMarginalHeap
from repro.submodular.modular import modular_relaxation_word2vec
from repro.text.transformations import apply_word_substitutions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attacks.engine import AttackEngine
    from repro.attacks.proposals import CandidateSource

__all__ = [
    "SearchStrategy",
    "GreedySearch",
    "LazyGreedySearch",
    "BeamSearch",
    "RandomSearch",
    "FirstOrderSearch",
    "GaussSouthwellSearch",
    "StagedSearch",
]


def _validate_tau(tau: float) -> float:
    if not 0.0 < tau <= 1.0:
        raise ValueError("tau must be in (0, 1]")
    return tau


class SearchStrategy:
    """Maximizes ``C_y`` over one proposal's transformation space.

    ``run`` returns ``(adversarial tokens, stage tags)`` — exactly what
    :meth:`Attack._run` contracts to produce.  Strategies are picklable
    (plain attributes only) and carry the ``_reseed_recurse`` marker so
    per-document reseeding reaches any RNG streams they own.
    """

    kind = "search"
    _reseed_recurse = True

    def run(
        self,
        engine: "AttackEngine",
        source: "CandidateSource",
        doc: list[str],
        target_label: int,
    ) -> tuple[list[str], list[str]]:
        raise NotImplementedError

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)


class GreedySearch(SearchStrategy):
    """Exhaustive greedy: full rescan of admissible moves every round.

    One unit per iteration — apply the single move that most increases
    ``C_y``, repeat until τ, budget exhaustion, or no improving move.
    Greedy maximization of the attack set function with the inner maximum
    restricted to extending the incumbent (Alg. 2 for sentences; the
    Kuleshov [19] baseline for words).
    """

    kind = "greedy"

    def __init__(self, tau: float = 0.7) -> None:
        self.tau = _validate_tau(tau)

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc)
        state = proposal.initial_state()
        score = engine.score(proposal.tokens(state), target_label)
        support: set[int] = set()
        stages: list[str] = []
        while (
            score < self.tau
            and len(support) < proposal.budget
            and not engine.out_of_queries()
        ):
            moves = proposal.admissible_moves(state, support)
            if not moves:
                break
            states = [proposal.apply(state, j, move) for j, move in moves]
            candidates = [proposal.tokens(s) for s in states]
            with engine.span("greedy-select"):
                scores = engine.score_batch(
                    candidates, target_label, base=proposal.tokens(state)
                )
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= score + 1e-12:
                break
            j = moves[best][0]
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=[j],
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - score,
                rescans=0,
            )
            state = states[best]
            score = scores[best]
            proposal.update_support(support, state, j)
            stages.append(proposal.stage)
        return proposal.tokens(state), stages


class LazyGreedySearch(SearchStrategy):
    """CELF/Minoux lazy greedy via :class:`LazyMarginalHeap`.

    The first round scores every admissible move in one batch (identical
    to :class:`GreedySearch`); later rounds re-evaluate only moves whose
    stale upper bound reaches the top of the heap.  Exact when the attack
    objective is submodular (the regime of Thms. 1-2, which
    ``submodular.empirical`` verifies on these victims); in general a fast
    approximation of the full rescan with the same budget/τ semantics.
    Stale bounds are only upper bounds under submodularity, so an
    apparently exhausted heap is confirmed with one batched rescan before
    terminating.
    """

    kind = "lazy-greedy"

    def __init__(self, tau: float = 0.7) -> None:
        self.tau = _validate_tau(tau)

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc)
        state = proposal.initial_state()
        score = engine.score(proposal.tokens(state), target_label)
        support: set[int] = set()
        stages: list[str] = []
        if proposal.budget == 0 or score >= self.tau:
            return proposal.tokens(state), stages
        # moves are indexed, not hashed by content (sentence moves are lists)
        moves = [(j, move) for j in proposal.positions() for move in proposal.moves_at(j)]

        def rebuild_heap() -> LazyMarginalHeap | None:
            """Exact gains for every admissible move, in one batched scan."""
            admissible = [
                i
                for i, (j, move) in enumerate(moves)
                if not (proposal.consumes_positions and j in support)
                and move != proposal.unit(state, j)
            ]
            if not admissible:
                return None
            scores = engine.score_batch(
                [
                    proposal.tokens(proposal.apply(state, moves[i][0], moves[i][1]))
                    for i in admissible
                ],
                target_label,
                base=proposal.tokens(state),
            )
            heap = LazyMarginalHeap()
            heap.push_all((i, s - score) for i, s in zip(admissible, scores))
            return heap

        # round 1 = scan: seed the heap with exact gains from one batch
        heap = rebuild_heap()
        fresh_heap = True
        while (
            heap is not None
            and score < self.tau
            and len(support) < proposal.budget
            and not engine.out_of_queries()
        ):
            rescans = 0

            def fresh_gain(idx: int) -> float | None:
                nonlocal rescans
                rescans += 1
                j, move = moves[idx]
                if (proposal.consumes_positions and j in support) or move == proposal.unit(
                    state, j
                ):
                    return None  # position consumed / move already applied
                candidate = proposal.tokens(proposal.apply(state, j, move))
                return (
                    engine.score_batch(
                        [candidate], target_label, base=proposal.tokens(state)
                    )[0]
                    - score
                )

            with engine.span("greedy-select"):
                n_candidates = len(heap)
                picked = heap.select(fresh_gain, tolerance=1e-12)
            if picked is None:
                # stale bounds are exact only under submodularity: confirm
                # exhaustion with one batched rescan before terminating
                if fresh_heap:
                    break
                heap = rebuild_heap()
                fresh_heap = True
                continue
            idx, gain = picked
            j, move = moves[idx]
            state = proposal.apply(state, j, move)
            score += gain
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=[j],
                n_candidates=n_candidates,
                best_objective=score,
                marginal_gain=gain,
                rescans=rescans,
            )
            proposal.update_support(support, state, j)
            stages.append(proposal.stage)
            fresh_heap = False
        return proposal.tokens(state), stages


class BeamSearch(SearchStrategy):
    """Width-B beam over substitution sets.

    Greedy keeps a single incumbent; beam search keeps the ``beam_width``
    best partial substitution sets and expands each with every
    single-position move per round.  ``beam_width = 1`` reduces to greedy;
    wider beams trade model queries for a better-explored search space.
    """

    kind = "beam"

    def __init__(self, tau: float = 0.7, beam_width: int = 3) -> None:
        self.tau = _validate_tau(tau)
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.beam_width = beam_width

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc)
        origin = proposal.initial_state()
        base_score = engine.score(proposal.tokens(origin), target_label)
        # beam entries: (score, substitutions dict)
        beam: list[tuple[float, dict]] = [(base_score, {})]
        best_score, best_subs = base_score, {}
        for round_index in range(proposal.budget):
            if best_score >= self.tau or engine.out_of_queries():
                break
            candidates: list[dict] = []
            seen: set[tuple] = set()
            for _, subs in beam:
                for j in proposal.positions():
                    if j in subs:
                        continue
                    for move in proposal.moves_at(j):
                        if move == proposal.unit(origin, j):
                            continue
                        extended = {**subs, j: move}
                        key = tuple(
                            sorted((p, proposal.move_key(m)) for p, m in extended.items())
                        )
                        if key not in seen:
                            seen.add(key)
                            candidates.append(extended)
            if not candidates:
                break
            docs = [proposal.tokens(proposal.apply_many(origin, subs)) for subs in candidates]
            with engine.span("greedy-select"):
                # multi-position beam candidates still share one origin: a
                # delta scorer sees one (possibly wide) edit span per doc
                scores = engine.score_batch(
                    docs, target_label, base=proposal.tokens(origin)
                )
                ranked = sorted(zip(scores, candidates), key=lambda sc: -sc[0])
            beam = [(s, c) for s, c in ranked[: self.beam_width]]
            if beam[0][0] <= best_score + 1e-12:
                break
            previous_best = best_score
            best_score, best_subs = beam[0]
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=round_index,
                positions=sorted(best_subs),
                n_candidates=len(candidates),
                best_objective=best_score,
                marginal_gain=best_score - previous_best,
                rescans=0,
            )
        adversarial = proposal.apply_many(origin, best_subs)
        return proposal.tokens(adversarial), [proposal.stage] * len(best_subs)


class RandomSearch(SearchStrategy):
    """Uniformly random moves within the budget — the ablation baseline.

    Its gap to the guided strategies quantifies how much the search
    matters.  Requires scalar (string) moves, i.e. word-level sources.
    """

    kind = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc)
        state = proposal.initial_state()
        rng = np.random.default_rng(self.seed)
        positions = proposal.positions()
        if not positions or proposal.budget == 0:
            return proposal.tokens(state), []
        chosen = rng.choice(
            positions, size=min(proposal.budget, len(positions)), replace=False
        )
        substitutions = {int(i): str(rng.choice(proposal.moves_at(int(i)))) for i in chosen}
        stages = [proposal.stage] * len(substitutions)
        return proposal.tokens(proposal.apply_many(state, substitutions)), stages


class FirstOrderSearch(SearchStrategy):
    """One-shot first-order relaxation — the Gong [18] gradient baseline.

    Solves Problem 2 / Proposition 2 in closed form: linearize ``C_y`` at
    the current embeddings, score every candidate by
    ``(V(x_i^{(t)}) − V(x_i)) · ĝ_i``, and apply the top-``budget``
    positive replacements in one shot.  Fast (one gradient per iteration,
    no candidate scoring) but weak: the linearization ignores that synonym
    embeddings are not infinitesimally close (paper Sec. 4.1, Table 3).
    Word-level only (gradients align with token positions).
    """

    kind = "first-order"

    def __init__(self, iterations: int = 1) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc)
        model = engine.model

        def embedding_of(word: str) -> np.ndarray:
            return model.embedding.weight.data[model.vocab.id(word)]

        current = proposal.initial_state()
        changed: set[int] = set()
        stages: list[str] = []
        for _ in range(self.iterations):
            remaining = proposal.budget - len(changed)
            if remaining <= 0 or engine.out_of_queries():
                break
            # gradient is only defined over the model's window
            n = min(len(current), model.max_len)
            gradient = engine.gradient(current, target_label)
            original_vectors = np.stack([embedding_of(w) for w in current[:n]])
            candidate_vectors = [
                [embedding_of(c) for c in proposal.moves_at(i)] for i in range(n)
            ]
            relaxation = modular_relaxation_word2vec(
                original_vectors, candidate_vectors, gradient
            )
            # never re-count already-changed positions against the budget
            weights = relaxation.weights.copy()
            weights[[i for i in range(n) if i in changed]] = 0.0
            order = np.argsort(-weights)
            substitutions: dict[int, str] = {}
            for i in order[:remaining]:
                if weights[i] <= 0:
                    break
                substitutions[int(i)] = proposal.moves_at(int(i))[
                    relaxation.best_choice[i] - 1
                ]
            if not substitutions:
                break
            current = proposal.apply_many(current, substitutions)
            changed.update(substitutions)
            stages.extend([proposal.stage] * len(substitutions))
        return proposal.tokens(current), stages


class GaussSouthwellSearch(SearchStrategy):
    """Gradient-guided greedy — the paper's Algorithm 3.

    Each iteration asks the source (a
    :class:`~repro.attacks.proposals.GradientRankedSource`) for the ``N``
    highest first-order-score positions, builds the *joint* candidate set
    ``M`` over them (steps 7-15: starting from ``{x}``, extend every
    member with every candidate word, keeping partials), and moves to the
    best-scoring member.  The joint set captures interaction effects that
    one-word-at-a-time greedy misses, while the gradient preselection
    keeps the search space small (Table 3).

    Because ``|M| = Π (1 + |W_j|)`` grows exponentially in ``N``, the set
    is beam-limited to ``max_candidates`` members (candidate lists per
    position are capped at ``per_position_cap``).  When a batch of
    positions yields no improvement the search falls back to the next
    batch down the gradient ranking (``skip``) instead of giving up.
    """

    kind = "gauss-southwell"

    def __init__(
        self,
        tau: float = 0.7,
        words_per_iteration: int = 5,
        max_candidates: int = 128,
        per_position_cap: int = 2,
        max_iterations: int = 50,
    ) -> None:
        self.tau = _validate_tau(tau)
        if words_per_iteration < 1:
            raise ValueError("words_per_iteration must be >= 1")
        self.words_per_iteration = words_per_iteration
        self.max_candidates = max_candidates
        self.per_position_cap = per_position_cap
        self.max_iterations = max_iterations

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc)
        current = proposal.initial_state()
        score = engine.score(proposal.tokens(current), target_label)
        changed: set[int] = set()
        stages: list[str] = []
        skip = 0
        for _ in range(self.max_iterations):
            if (
                score >= self.tau
                or len(changed) >= proposal.budget
                or engine.out_of_queries()
            ):
                break
            selected, candidate_order = source.rank_positions(
                engine,
                proposal,
                current,
                target_label,
                changed,
                proposal.budget,
                self.words_per_iteration,
                skip=skip,
            )
            if not selected:
                break
            # steps 7-15: joint candidate product over the selected positions
            frontier: list[dict[int, str]] = [{}]
            for j in selected:
                ordered = candidate_order.get(j, proposal.moves_at(j))
                extensions: list[dict[int, str]] = []
                for partial in frontier:
                    for word in ordered[: self.per_position_cap]:
                        if word == current[j]:
                            continue
                        extensions.append({**partial, j: word})
                        if len(frontier) + len(extensions) >= self.max_candidates:
                            break
                    if len(frontier) + len(extensions) >= self.max_candidates:
                        break
                frontier = frontier + extensions
            frontier = [f for f in frontier if f]
            if not frontier:
                break
            candidates = [proposal.apply_many(current, subs) for subs in frontier]
            with engine.span("greedy-select"):
                scores = engine.score_batch(
                    [proposal.tokens(c) for c in candidates],
                    target_label,
                    base=proposal.tokens(current),
                )
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= score + 1e-12:
                # This batch of positions cannot improve; fall back to the
                # next batch down the gradient ranking.
                skip += self.words_per_iteration
                continue
            skip = 0
            subs = self.prune(engine, frontier[best], current, scores[best], target_label)
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=sorted(subs),
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - score,
                rescans=0,
            )
            current = proposal.apply_many(current, subs)
            score = scores[best]
            for pos in subs:
                if current[pos] != doc[pos]:
                    changed.add(pos)
                else:
                    changed.discard(pos)
            stages.extend([proposal.stage] * len(subs))
        return proposal.tokens(current), stages

    def prune(
        self,
        engine: "AttackEngine",
        substitutions: dict[int, str],
        current: list[str],
        best_score: float,
        target_label: int,
    ) -> dict[int, str]:
        """Backward pruning: drop substitutions that don't pay their way.

        The joint candidate search can include replacements contributing
        only epsilon to the combined score; each such replacement still
        consumes a unit of the distinct-word budget.  Removing each
        substitution in turn and keeping the removal whenever the score
        does not drop refunds that budget at a cost of |combo| extra
        queries.
        """
        if len(substitutions) <= 1:
            return substitutions
        kept = dict(substitutions)
        for pos in sorted(substitutions):
            if len(kept) == 1:
                break
            trial = {p: w for p, w in kept.items() if p != pos}
            score = engine.score_batch(
                [apply_word_substitutions(current, trial)],
                target_label,
                base=list(current),
            )[0]
            if score >= best_score - 1e-12:
                kept = trial
                best_score = score
        return kept


class StagedSearch(SearchStrategy):
    """Sequential composition of (source, strategy) stages — Algorithm 1.

    Runs each stage's search on the previous stage's output through the
    *same* engine, so all stages share one ScoreCache (scores paid in the
    sentence stage are hits when the word stage starts), one query
    counter, and one trace.  Between stages the incumbent is scored once
    and the pipeline stops early when τ is already reached — exactly
    Alg. 1's "if C_y ≥ τ return" between steps 5 and 6.
    """

    kind = "staged"

    def __init__(
        self,
        stages: list[tuple["CandidateSource", "SearchStrategy"]],
        tau: float = 0.7,
    ) -> None:
        if not stages:
            raise ValueError("StagedSearch needs at least one stage")
        self.stages = list(stages)
        self.tau = _validate_tau(tau)

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)
        for stage_source, stage_search in self.stages:
            stage_source.reseed(seed)
            stage_search.reseed(seed)

    def run(self, engine, source, doc, target_label):
        # `source` is unused: each stage carries its own source.  The
        # engine passes its configured source through for interface
        # uniformity (it is the first stage's source).
        current = list(doc)
        tags: list[str] = []
        for index, (stage_source, stage_search) in enumerate(self.stages):
            tokens, stage_tags = stage_search.run(engine, stage_source, current, target_label)
            current = tokens
            tags = tags + stage_tags
            if index < len(self.stages) - 1:
                if engine.score(current, target_label) >= self.tau:
                    return current, tags
        return current, tags
