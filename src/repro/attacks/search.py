"""Search strategies — the "how to search" axis of Problem 1.

Each strategy maximizes the attack objective ``C_y`` over transformations
drawn from a :class:`~repro.attacks.proposals.Proposal`, under the
proposal's ``m``-constraint and the engine's τ / query-budget termination.
Strategies are model-agnostic: every forward goes through the engine's
scoring choke point (:meth:`~repro.attacks.engine.AttackEngine.score_batch`)
and every gradient through :meth:`~repro.attacks.engine.AttackEngine.gradient`,
so caching, query accounting, spans and trace events are uniform across
all source × strategy combinations.

The greedy variants delegate stale-bound bookkeeping to
:class:`repro.submodular.greedy.LazyMarginalHeap` — the same CELF/Minoux
machinery the set-function layer uses — instead of duplicating it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.attacks.base import reseed_object
from repro.submodular.greedy import LazyMarginalHeap
from repro.submodular.modular import modular_relaxation_word2vec
from repro.text.transformations import apply_word_substitutions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attacks.engine import AttackEngine
    from repro.attacks.proposals import CandidateSource

__all__ = [
    "SearchStrategy",
    "GreedySearch",
    "LazyGreedySearch",
    "BeamSearch",
    "RandomSearch",
    "ParticleSwarmSearch",
    "HeuristicRankSearch",
    "FirstOrderSearch",
    "GaussSouthwellSearch",
    "StagedSearch",
]


def _validate_tau(tau: float) -> float:
    if not 0.0 < tau <= 1.0:
        raise ValueError("tau must be in (0, 1]")
    return tau


class SearchStrategy:
    """Maximizes ``C_y`` over one proposal's transformation space.

    ``run`` returns ``(adversarial tokens, stage tags)`` — exactly what
    :meth:`Attack._run` contracts to produce.  Strategies are picklable
    (plain attributes only) and carry the ``_reseed_recurse`` marker so
    per-document reseeding reaches any RNG streams they own.
    """

    kind = "search"
    _reseed_recurse = True

    def run(
        self,
        engine: "AttackEngine",
        source: "CandidateSource",
        doc: list[str],
        target_label: int,
    ) -> tuple[list[str], list[str]]:
        raise NotImplementedError

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)


class GreedySearch(SearchStrategy):
    """Exhaustive greedy: full rescan of admissible moves every round.

    One unit per iteration — apply the single move that most increases
    ``C_y``, repeat until τ, budget exhaustion, or no improving move.
    Greedy maximization of the attack set function with the inner maximum
    restricted to extending the incumbent (Alg. 2 for sentences; the
    Kuleshov [19] baseline for words).
    """

    kind = "greedy"

    def __init__(self, tau: float = 0.7) -> None:
        self.tau = _validate_tau(tau)

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        state = proposal.initial_state()
        score = engine.score(proposal.tokens(state), target_label)
        support: set[int] = set()
        stages: list[str] = []
        while (
            score < self.tau
            and len(support) < proposal.budget
            and not engine.out_of_queries()
        ):
            moves = proposal.admissible_moves(state, support)
            if not moves:
                break
            states = [proposal.apply(state, j, move) for j, move in moves]
            candidates = [proposal.tokens(s) for s in states]
            with engine.span("greedy-select"):
                scores = engine.score_batch(
                    candidates, target_label, base=proposal.tokens(state)
                )
                if not scores:  # budget truncated the whole batch
                    break
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= score + 1e-12:
                break
            j = moves[best][0]
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=[j],
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - score,
                rescans=0,
            )
            state = states[best]
            score = scores[best]
            proposal.update_support(support, state, j)
            stages.append(proposal.stage)
        return proposal.tokens(state), stages


class LazyGreedySearch(SearchStrategy):
    """CELF/Minoux lazy greedy via :class:`LazyMarginalHeap`.

    The first round scores every admissible move in one batch (identical
    to :class:`GreedySearch`); later rounds re-evaluate only moves whose
    stale upper bound reaches the top of the heap.  Exact when the attack
    objective is submodular (the regime of Thms. 1-2, which
    ``submodular.empirical`` verifies on these victims); in general a fast
    approximation of the full rescan with the same budget/τ semantics.
    Stale bounds are only upper bounds under submodularity, so an
    apparently exhausted heap is confirmed with one batched rescan before
    terminating.
    """

    kind = "lazy-greedy"

    def __init__(self, tau: float = 0.7) -> None:
        self.tau = _validate_tau(tau)

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        state = proposal.initial_state()
        score = engine.score(proposal.tokens(state), target_label)
        support: set[int] = set()
        stages: list[str] = []
        if proposal.budget == 0 or score >= self.tau:
            return proposal.tokens(state), stages
        # moves are indexed, not hashed by content (sentence moves are lists)
        moves = [(j, move) for j in proposal.positions() for move in proposal.moves_at(j)]

        def rebuild_heap() -> LazyMarginalHeap | None:
            """Exact gains for every admissible move, in one batched scan."""
            admissible = [
                i
                for i, (j, move) in enumerate(moves)
                if not (proposal.consumes_positions and j in support)
                and move != proposal.unit(state, j)
            ]
            if not admissible:
                return None
            scores = engine.score_batch(
                [
                    proposal.tokens(proposal.apply(state, moves[i][0], moves[i][1]))
                    for i in admissible
                ],
                target_label,
                base=proposal.tokens(state),
            )
            heap = LazyMarginalHeap()
            heap.push_all((i, s - score) for i, s in zip(admissible, scores))
            return heap

        # round 1 = scan: seed the heap with exact gains from one batch
        heap = rebuild_heap()
        fresh_heap = True
        while (
            heap is not None
            and score < self.tau
            and len(support) < proposal.budget
            and not engine.out_of_queries()
        ):
            rescans = 0

            def fresh_gain(idx: int) -> float | None:
                nonlocal rescans
                rescans += 1
                j, move = moves[idx]
                if (proposal.consumes_positions and j in support) or move == proposal.unit(
                    state, j
                ):
                    return None  # position consumed / move already applied
                candidate = proposal.tokens(proposal.apply(state, j, move))
                fresh = engine.score_batch(
                    [candidate], target_label, base=proposal.tokens(state)
                )
                if not fresh:  # budget exhausted mid-select
                    return None
                return fresh[0] - score

            with engine.span("greedy-select"):
                n_candidates = len(heap)
                picked = heap.select(fresh_gain, tolerance=1e-12)
            if picked is None:
                # stale bounds are exact only under submodularity: confirm
                # exhaustion with one batched rescan before terminating
                if fresh_heap:
                    break
                heap = rebuild_heap()
                fresh_heap = True
                continue
            idx, gain = picked
            j, move = moves[idx]
            state = proposal.apply(state, j, move)
            score += gain
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=[j],
                n_candidates=n_candidates,
                best_objective=score,
                marginal_gain=gain,
                rescans=rescans,
            )
            proposal.update_support(support, state, j)
            stages.append(proposal.stage)
            fresh_heap = False
        return proposal.tokens(state), stages


class BeamSearch(SearchStrategy):
    """Width-B beam over substitution sets.

    Greedy keeps a single incumbent; beam search keeps the ``beam_width``
    best partial substitution sets and expands each with every
    single-position move per round.  ``beam_width = 1`` reduces to greedy;
    wider beams trade model queries for a better-explored search space.
    """

    kind = "beam"

    def __init__(self, tau: float = 0.7, beam_width: int = 3) -> None:
        self.tau = _validate_tau(tau)
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.beam_width = beam_width

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        origin = proposal.initial_state()
        base_score = engine.score(proposal.tokens(origin), target_label)
        # beam entries: (score, substitutions dict)
        beam: list[tuple[float, dict]] = [(base_score, {})]
        best_score, best_subs = base_score, {}
        for round_index in range(proposal.budget):
            if best_score >= self.tau or engine.out_of_queries():
                break
            candidates: list[dict] = []
            seen: set[tuple] = set()
            for _, subs in beam:
                for j in proposal.positions():
                    if j in subs:
                        continue
                    for move in proposal.moves_at(j):
                        if move == proposal.unit(origin, j):
                            continue
                        extended = {**subs, j: move}
                        key = tuple(
                            sorted((p, proposal.move_key(m)) for p, m in extended.items())
                        )
                        if key not in seen:
                            seen.add(key)
                            candidates.append(extended)
            if not candidates:
                break
            docs = [proposal.tokens(proposal.apply_many(origin, subs)) for subs in candidates]
            with engine.span("greedy-select"):
                # multi-position beam candidates still share one origin: a
                # delta scorer sees one (possibly wide) edit span per doc
                scores = engine.score_batch(
                    docs, target_label, base=proposal.tokens(origin)
                )
                if not scores:  # budget truncated the whole batch
                    break
                ranked = sorted(zip(scores, candidates), key=lambda sc: -sc[0])
            beam = [(s, c) for s, c in ranked[: self.beam_width]]
            if beam[0][0] <= best_score + 1e-12:
                break
            previous_best = best_score
            best_score, best_subs = beam[0]
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=round_index,
                positions=sorted(best_subs),
                n_candidates=len(candidates),
                best_objective=best_score,
                marginal_gain=best_score - previous_best,
                rescans=0,
            )
        adversarial = proposal.apply_many(origin, best_subs)
        return proposal.tokens(adversarial), [proposal.stage] * len(best_subs)


class RandomSearch(SearchStrategy):
    """Uniformly random moves within the budget — the ablation baseline.

    Its gap to the guided strategies quantifies how much the search
    matters.  Requires scalar (string) moves, i.e. word-level sources.

    Each ``run`` draws from a fresh child stream derived from
    ``(seed, call counter)``, so repeated runs on one instance
    (multi-restart loops, staged pipelines) explore different moves
    instead of replaying identical draws.  The first call after a
    ``reseed`` uses the bare ``seed`` stream, which keeps the
    per-document reseeding contract — and the frozen goldens, which are
    recorded one document per reseed — bitwise-intact.
    """

    kind = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._call_count = 0

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)
        self._call_count = 0

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        state = proposal.initial_state()
        if self._call_count == 0:
            rng = np.random.default_rng(self.seed)
        else:
            rng = np.random.default_rng((self.seed, self._call_count))
        self._call_count += 1
        positions = proposal.positions()
        if not positions or proposal.budget == 0:
            return proposal.tokens(state), []
        chosen = rng.choice(
            positions, size=min(proposal.budget, len(positions)), replace=False
        )
        substitutions = {int(i): str(rng.choice(proposal.moves_at(int(i)))) for i in chosen}
        stages = [proposal.stage] * len(substitutions)
        return proposal.tokens(proposal.apply_many(state, substitutions)), stages


class ParticleSwarmSearch(SearchStrategy):
    """Discrete particle-swarm population search (Zang et al., arXiv:1910.12196).

    A swarm of ``n_particles`` candidate substitution sets evolves for
    ``iterations`` rounds: each round scores every particle in one batch
    through the engine, updates personal bests (``pbest``) and the global
    best (``gbest``), then moves each particle position-wise — keep its own
    move with probability ``inertia``, adopt the ``pbest`` move with
    probability ``cognitive``, else adopt the ``gbest`` move — with a
    ``mutation_rate`` chance of one fresh random substitution.  Particles
    never exceed the proposal's ``m``-constraint (oversized particles are
    randomly pruned back to the budget).

    Population search trades many queries per round for global exploration
    that single-incumbent greedy cannot do — the frontier benchmark
    measures exactly that trade.  Requires scalar (string) moves, i.e.
    word-level sources.  Like :class:`RandomSearch`, each ``run`` draws
    from a ``(seed, call counter)`` child stream with the counter reset on
    ``reseed``, so per-document reseeding keeps 1-vs-N-worker runs
    bitwise identical.
    """

    kind = "pso"

    def __init__(
        self,
        tau: float = 0.7,
        n_particles: int = 8,
        iterations: int = 10,
        inertia: float = 0.5,
        cognitive: float = 0.3,
        mutation_rate: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.tau = _validate_tau(tau)
        if n_particles < 1:
            raise ValueError("n_particles must be >= 1")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 <= inertia <= 1.0 or not 0.0 <= cognitive <= 1.0:
            raise ValueError("inertia and cognitive must be in [0, 1]")
        if inertia + cognitive > 1.0:
            raise ValueError("inertia + cognitive must be <= 1 (rest is social)")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        self.n_particles = n_particles
        self.iterations = iterations
        self.inertia = inertia
        self.cognitive = cognitive
        self.mutation_rate = mutation_rate
        self.seed = seed
        self._call_count = 0

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)
        self._call_count = 0

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        state = proposal.initial_state()
        positions = [j for j in proposal.positions() if proposal.moves_at(j)]
        budget = proposal.budget
        if self._call_count == 0:
            rng = np.random.default_rng(self.seed)
        else:
            rng = np.random.default_rng((self.seed, self._call_count))
        self._call_count += 1
        if not positions or budget == 0:
            return proposal.tokens(state), []
        base_tokens = proposal.tokens(state)
        base_score = engine.score(base_tokens, target_label)
        best_tokens, best_score, gbest = base_tokens, base_score, {}
        if base_score >= self.tau:
            return best_tokens, []

        def random_particle() -> dict[int, str]:
            k = int(rng.integers(1, min(budget, len(positions)) + 1))
            chosen = rng.choice(positions, size=k, replace=False)
            return {int(j): str(rng.choice(proposal.moves_at(int(j)))) for j in chosen}

        particles = [random_particle() for _ in range(self.n_particles)]
        pbest = [dict(p) for p in particles]
        pbest_scores = [-np.inf] * self.n_particles
        for iteration in range(self.iterations):
            if engine.out_of_queries():
                break
            docs = [proposal.tokens(proposal.apply_many(state, p)) for p in particles]
            with engine.span("greedy-select"):
                scores = engine.score_batch(docs, target_label, base=base_tokens)
            if not scores:  # budget truncated the whole batch
                break
            previous_best = best_score
            for i, s in enumerate(scores):  # may be a budget-truncated prefix
                if s > pbest_scores[i]:
                    pbest_scores[i] = s
                    pbest[i] = dict(particles[i])
                if s > best_score:
                    best_score, gbest, best_tokens = s, dict(particles[i]), docs[i]
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=iteration,
                positions=sorted(gbest),
                n_candidates=len(docs),
                best_objective=best_score,
                marginal_gain=best_score - previous_best,
                rescans=0,
            )
            if best_score >= self.tau:
                break
            moved: list[dict[int, str]] = []
            for i, particle in enumerate(particles):
                child: dict[int, str] = {}
                for j in sorted(set(particle) | set(pbest[i]) | set(gbest)):
                    r = rng.random()
                    if r < self.inertia:
                        if j in particle:
                            child[j] = particle[j]
                    elif r < self.inertia + self.cognitive:
                        if j in pbest[i]:
                            child[j] = pbest[i][j]
                    elif j in gbest:
                        child[j] = gbest[j]
                if rng.random() < self.mutation_rate:
                    j = int(rng.choice(positions))
                    child[j] = str(rng.choice(proposal.moves_at(j)))
                if len(child) > budget:
                    keep = rng.choice(sorted(child), size=budget, replace=False)
                    child = {int(j): child[int(j)] for j in keep}
                moved.append(child if child else random_particle())
            particles = moved
        return best_tokens, [proposal.stage] * len(gbest)


class HeuristicRankSearch(SearchStrategy):
    """Saliency-rank-then-replace, no search — the Berger et al. yardstick
    (arXiv:2109.07926).

    Two fixed passes, deliberately simple: (1) mask every attackable
    position with ``mask_token`` and score the masked documents in one
    batch — the objective gain under masking is the position's saliency;
    (2) walk positions once in descending saliency and substitute, never
    revisiting a position or re-ranking.  ``candidate_rule`` picks how a
    replacement is chosen at each position: ``"best"`` scores all
    candidates in one batch and keeps the best improving one; ``"first"``
    scores candidates one by one and keeps the first that improves (fewer
    queries, weaker).  The gap between this baseline and the search
    strategies is the benchmark's measure of how much search matters.
    Requires scalar (string) moves, i.e. word-level sources.
    """

    kind = "heuristic-rank"

    def __init__(
        self,
        tau: float = 0.7,
        candidate_rule: str = "best",
        mask_token: str = "<unk>",
    ) -> None:
        self.tau = _validate_tau(tau)
        if candidate_rule not in ("best", "first"):
            raise ValueError("candidate_rule must be 'best' or 'first'")
        self.candidate_rule = candidate_rule
        self.mask_token = mask_token

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        state = proposal.initial_state()
        score = engine.score(proposal.tokens(state), target_label)
        positions = [j for j in proposal.positions() if proposal.moves_at(j)]
        stages: list[str] = []
        if not positions or proposal.budget == 0 or score >= self.tau:
            return proposal.tokens(state), stages
        # pass 1 — saliency: objective gain when each position is masked
        masked = [
            proposal.tokens(proposal.apply(state, j, self.mask_token)) for j in positions
        ]
        with engine.span("greedy-select"):
            saliency_scores = engine.score_batch(
                masked, target_label, base=proposal.tokens(state)
            )
        saliency = {j: s - score for j, s in zip(positions, saliency_scores)}
        ranked = sorted(saliency, key=lambda j: (-saliency[j], j))
        # pass 2 — replace in rank order, one visit per position
        support: set[int] = set()
        for j in ranked:
            if (
                score >= self.tau
                or len(support) >= proposal.budget
                or engine.out_of_queries()
            ):
                break
            moves = [m for m in proposal.moves_at(j) if m != proposal.unit(state, j)]
            if not moves:
                continue
            picked = None
            if self.candidate_rule == "best":
                candidates = [proposal.apply(state, j, m) for m in moves]
                with engine.span("greedy-select"):
                    scores = engine.score_batch(
                        [proposal.tokens(c) for c in candidates],
                        target_label,
                        base=proposal.tokens(state),
                    )
                if not scores:  # budget truncated the whole batch
                    break
                best = max(range(len(scores)), key=scores.__getitem__)
                if scores[best] > score + 1e-12:
                    picked = (candidates[best], scores[best], len(scores))
            else:  # first improving candidate
                for n_tried, move in enumerate(moves, start=1):
                    candidate = proposal.apply(state, j, move)
                    scores = engine.score_batch(
                        [proposal.tokens(candidate)],
                        target_label,
                        base=proposal.tokens(state),
                    )
                    if not scores:
                        break
                    if scores[0] > score + 1e-12:
                        picked = (candidate, scores[0], n_tried)
                        break
            if picked is None:
                continue
            state, new_score, n_candidates = picked
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=[j],
                n_candidates=n_candidates,
                best_objective=new_score,
                marginal_gain=new_score - score,
                rescans=0,
            )
            score = new_score
            proposal.update_support(support, state, j)
            stages.append(proposal.stage)
        return proposal.tokens(state), stages


class FirstOrderSearch(SearchStrategy):
    """One-shot first-order relaxation — the Gong [18] gradient baseline.

    Solves Problem 2 / Proposition 2 in closed form: linearize ``C_y`` at
    the current embeddings, score every candidate by
    ``(V(x_i^{(t)}) − V(x_i)) · ĝ_i``, and apply the top-``budget``
    positive replacements in one shot.  Fast (one gradient per iteration,
    no candidate scoring) but weak: the linearization ignores that synonym
    embeddings are not infinitesimally close (paper Sec. 4.1, Table 3).
    Word-level only (gradients align with token positions).
    """

    kind = "first-order"

    def __init__(self, iterations: int = 1) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        model = engine.model

        def embedding_of(word: str) -> np.ndarray:
            return model.embedding.weight.data[model.vocab.id(word)]

        current = proposal.initial_state()
        changed: set[int] = set()
        stages: list[str] = []
        for _ in range(self.iterations):
            remaining = proposal.budget - len(changed)
            if remaining <= 0 or engine.out_of_queries():
                break
            # gradient is only defined over the model's window
            n = min(len(current), model.max_len)
            gradient = engine.gradient(current, target_label)
            original_vectors = np.stack([embedding_of(w) for w in current[:n]])
            candidate_vectors = [
                [embedding_of(c) for c in proposal.moves_at(i)] for i in range(n)
            ]
            relaxation = modular_relaxation_word2vec(
                original_vectors, candidate_vectors, gradient
            )
            # never re-count already-changed positions against the budget
            weights = relaxation.weights.copy()
            weights[[i for i in range(n) if i in changed]] = 0.0
            order = np.argsort(-weights)
            substitutions: dict[int, str] = {}
            for i in order[:remaining]:
                if weights[i] <= 0:
                    break
                substitutions[int(i)] = proposal.moves_at(int(i))[
                    relaxation.best_choice[i] - 1
                ]
            if not substitutions:
                break
            current = proposal.apply_many(current, substitutions)
            changed.update(substitutions)
            stages.extend([proposal.stage] * len(substitutions))
        return proposal.tokens(current), stages


class GaussSouthwellSearch(SearchStrategy):
    """Gradient-guided greedy — the paper's Algorithm 3.

    Each iteration asks the source (a
    :class:`~repro.attacks.proposals.GradientRankedSource`) for the ``N``
    highest first-order-score positions, builds the *joint* candidate set
    ``M`` over them (steps 7-15: starting from ``{x}``, extend every
    member with every candidate word, keeping partials), and moves to the
    best-scoring member.  The joint set captures interaction effects that
    one-word-at-a-time greedy misses, while the gradient preselection
    keeps the search space small (Table 3).

    Because ``|M| = Π (1 + |W_j|)`` grows exponentially in ``N``, the set
    is beam-limited to ``max_candidates`` members (candidate lists per
    position are capped at ``per_position_cap``).  When a batch of
    positions yields no improvement the search falls back to the next
    batch down the gradient ranking (``skip``) instead of giving up.
    """

    kind = "gauss-southwell"

    def __init__(
        self,
        tau: float = 0.7,
        words_per_iteration: int = 5,
        max_candidates: int = 128,
        per_position_cap: int = 2,
        max_iterations: int = 50,
    ) -> None:
        self.tau = _validate_tau(tau)
        if words_per_iteration < 1:
            raise ValueError("words_per_iteration must be >= 1")
        self.words_per_iteration = words_per_iteration
        self.max_candidates = max_candidates
        self.per_position_cap = per_position_cap
        self.max_iterations = max_iterations

    def run(self, engine, source, doc, target_label):
        proposal = engine.index(source, doc, target_label)
        current = proposal.initial_state()
        score = engine.score(proposal.tokens(current), target_label)
        changed: set[int] = set()
        stages: list[str] = []
        skip = 0
        for _ in range(self.max_iterations):
            if (
                score >= self.tau
                or len(changed) >= proposal.budget
                or engine.out_of_queries()
            ):
                break
            selected, candidate_order = source.rank_positions(
                engine,
                proposal,
                current,
                target_label,
                changed,
                proposal.budget,
                self.words_per_iteration,
                skip=skip,
            )
            if not selected:
                break
            # steps 7-15: joint candidate product over the selected positions
            frontier: list[dict[int, str]] = [{}]
            for j in selected:
                ordered = candidate_order.get(j, proposal.moves_at(j))
                extensions: list[dict[int, str]] = []
                for partial in frontier:
                    for word in ordered[: self.per_position_cap]:
                        if word == current[j]:
                            continue
                        extensions.append({**partial, j: word})
                        if len(frontier) + len(extensions) >= self.max_candidates:
                            break
                    if len(frontier) + len(extensions) >= self.max_candidates:
                        break
                frontier = frontier + extensions
            frontier = [f for f in frontier if f]
            if not frontier:
                break
            candidates = [proposal.apply_many(current, subs) for subs in frontier]
            with engine.span("greedy-select"):
                scores = engine.score_batch(
                    [proposal.tokens(c) for c in candidates],
                    target_label,
                    base=proposal.tokens(current),
                )
                if not scores:  # budget truncated the whole batch
                    break
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= score + 1e-12:
                # This batch of positions cannot improve; fall back to the
                # next batch down the gradient ranking.
                skip += self.words_per_iteration
                continue
            skip = 0
            subs = self.prune(engine, frontier[best], current, scores[best], target_label)
            engine.trace_iteration(
                stage=proposal.stage,
                iteration=len(stages),
                positions=sorted(subs),
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - score,
                rescans=0,
            )
            current = proposal.apply_many(current, subs)
            score = scores[best]
            for pos in subs:
                if current[pos] != doc[pos]:
                    changed.add(pos)
                else:
                    changed.discard(pos)
            stages.extend([proposal.stage] * len(subs))
        return proposal.tokens(current), stages

    def prune(
        self,
        engine: "AttackEngine",
        substitutions: dict[int, str],
        current: list[str],
        best_score: float,
        target_label: int,
    ) -> dict[int, str]:
        """Backward pruning: drop substitutions that don't pay their way.

        The joint candidate search can include replacements contributing
        only epsilon to the combined score; each such replacement still
        consumes a unit of the distinct-word budget.  Removing each
        substitution in turn and keeping the removal whenever the score
        does not drop refunds that budget at a cost of |combo| extra
        queries.
        """
        if len(substitutions) <= 1:
            return substitutions
        kept = dict(substitutions)
        for pos in sorted(substitutions):
            if len(kept) == 1:
                break
            trial = {p: w for p, w in kept.items() if p != pos}
            trial_scores = engine.score_batch(
                [apply_word_substitutions(current, trial)],
                target_label,
                base=list(current),
            )
            if not trial_scores:  # budget exhausted mid-prune
                break
            score = trial_scores[0]
            if score >= best_score - 1e-12:
                kept = trial
                best_score = score
        return kept


class StagedSearch(SearchStrategy):
    """Sequential composition of (source, strategy) stages — Algorithm 1.

    Runs each stage's search on the previous stage's output through the
    *same* engine, so all stages share one ScoreCache (scores paid in the
    sentence stage are hits when the word stage starts), one query
    counter, and one trace.  Between stages the incumbent is scored once
    and the pipeline stops early when τ is already reached — exactly
    Alg. 1's "if C_y ≥ τ return" between steps 5 and 6.
    """

    kind = "staged"

    def __init__(
        self,
        stages: list[tuple["CandidateSource", "SearchStrategy"]],
        tau: float = 0.7,
    ) -> None:
        if not stages:
            raise ValueError("StagedSearch needs at least one stage")
        self.stages = list(stages)
        self.tau = _validate_tau(tau)

    def reseed(self, seed: int) -> None:
        reseed_object(self, seed)
        for stage_source, stage_search in self.stages:
            stage_source.reseed(seed)
            stage_search.reseed(seed)

    def run(self, engine, source, doc, target_label):
        # `source` is unused: each stage carries its own source.  The
        # engine passes its configured source through for interface
        # uniformity (it is the first stage's source).
        current = list(doc)
        tags: list[str] = []
        for index, (stage_source, stage_search) in enumerate(self.stages):
            tokens, stage_tags = stage_search.run(engine, stage_source, current, target_label)
            current = tokens
            tags = tags + stage_tags
            if index < len(self.stages) - 1:
                if engine.score(current, target_label) >= self.tau:
                    return current, tags
        return current, tags
