"""Character-level transformations (paper Remark 2, HotFlip-style).

The framework of Problem 1 is agnostic to what a "replacement" is; besides
synonym paraphrases the paper lists "flipping characters within each word"
(Ebrahimi et al.'s HotFlip) as a valid transformation family.  This module
provides that candidate source: for each word, candidates are small
character edits — adjacent-character swaps, visually-similar substitutions
(homoglyphs), character deletion and duplication — that keep the word
human-readable while (typically) mapping it out of the model's vocabulary,
the classic evasion mechanism.

Use :class:`CharFlipCandidates` anywhere a word paraphraser is accepted —
it produces the same :class:`~repro.attacks.transformations.WordNeighborSets`
interface consumed by every word-level attack.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.attacks.transformations import WordNeighborSets

__all__ = ["CharFlipCandidates", "HOMOGLYPHS"]

# visually-similar character substitutions (a deliberately small, readable set)
HOMOGLYPHS: dict[str, str] = {
    "a": "@",
    "e": "3",
    "i": "1",
    "o": "0",
    "s": "5",
    "l": "1",
    "t": "7",
}


class CharFlipCandidates:
    """Generates character-edit candidates per word position.

    Parameters
    ----------
    min_word_length:
        Words shorter than this are left alone (edits would destroy them).
    max_candidates:
        Cap per position (the ``k`` of Alg. 1 step 7).
    operations:
        Subset of ``{"swap", "homoglyph", "delete", "duplicate"}``.
    skip_words:
        Words never edited (e.g. punctuation is excluded automatically).
    """

    OPERATIONS = ("swap", "homoglyph", "delete", "duplicate")

    def __init__(
        self,
        min_word_length: int = 4,
        max_candidates: int = 8,
        operations: Sequence[str] = OPERATIONS,
        skip_words: Sequence[str] = (),
    ) -> None:
        if min_word_length < 2:
            raise ValueError("min_word_length must be >= 2")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        unknown = set(operations) - set(self.OPERATIONS)
        if unknown:
            raise ValueError(f"unknown operations: {sorted(unknown)}")
        self.min_word_length = min_word_length
        self.max_candidates = max_candidates
        self.operations = tuple(operations)
        self.skip_words = frozenset(skip_words)

    # -- edit operations ----------------------------------------------------
    @staticmethod
    def _swaps(word: str) -> list[str]:
        """Adjacent-character transpositions, interior only."""
        out = []
        for i in range(1, len(word) - 2):
            out.append(word[:i] + word[i + 1] + word[i] + word[i + 2 :])
        return out

    @staticmethod
    def _homoglyphs(word: str) -> list[str]:
        out = []
        for i, ch in enumerate(word):
            sub = HOMOGLYPHS.get(ch)
            if sub:
                out.append(word[:i] + sub + word[i + 1 :])
        return out

    @staticmethod
    def _deletions(word: str) -> list[str]:
        """Interior character deletions (keeps first/last letters — the
        'Cmabrigde' readability effect)."""
        return [word[:i] + word[i + 1 :] for i in range(1, len(word) - 1)]

    @staticmethod
    def _duplications(word: str) -> list[str]:
        return [word[:i] + word[i] + word[i:] for i in range(1, len(word) - 1)]

    def candidates_for_word(self, word: str) -> list[str]:
        """Character-edit candidates for one word, deduplicated and capped."""
        if len(word) < self.min_word_length or word in self.skip_words:
            return []
        if not any(ch.isalnum() for ch in word):
            return []
        raw: list[str] = []
        if "swap" in self.operations:
            raw.extend(self._swaps(word))
        if "homoglyph" in self.operations:
            raw.extend(self._homoglyphs(word))
        if "delete" in self.operations:
            raw.extend(self._deletions(word))
        if "duplicate" in self.operations:
            raw.extend(self._duplications(word))
        seen: set[str] = {word}
        out: list[str] = []
        for cand in raw:
            if cand not in seen:
                seen.add(cand)
                out.append(cand)
            if len(out) >= self.max_candidates:
                break
        return out

    def neighbor_sets(self, tokens: Sequence[str]) -> WordNeighborSets:
        """Per-position candidate sets, same interface as WordParaphraser."""
        return WordNeighborSets([self.candidates_for_word(t) for t in tokens])
