"""Pure gradient word attack — the Gong et al. [18] baseline.

Solves the first-order relaxation (Problem 2 / Proposition 2) in closed
form: linearize ``C_y`` at the current embeddings, score every candidate by
``(V(x_i^{(t)}) − V(x_i)) · ĝ_i``, and apply the top-``budget`` positive
replacements in one shot.  Fast (one gradient + one re-scoring pass) but
weak: the linearization ignores that synonym embeddings are not
infinitesimally close (paper Sec. 4.1, Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.transformations import apply_word_substitutions
from repro.models.base import TextClassifier
from repro.submodular.modular import modular_relaxation_word2vec

__all__ = ["GradientWordAttack"]


class GradientWordAttack(Attack):
    """One-shot first-order (Frank-Wolfe style) word substitution."""

    name = "gradient"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        iterations: int = 1,
    ) -> None:
        super().__init__(model)
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.iterations = iterations

    def _embedding_of(self, word: str) -> np.ndarray:
        return self.model.embedding.weight.data[self.model.vocab.id(word)]

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        current = list(doc)
        changed: set[int] = set()
        stages: list[str] = []
        for _ in range(self.iterations):
            remaining = budget - len(changed)
            if remaining <= 0:
                break
            # gradient is only defined over the model's window
            n = min(len(current), self.model.max_len)
            gradient = self.model.embedding_gradient(current, target_label)
            self._queries += 1  # gradient pass = one forward scoring
            original_vectors = np.stack([self._embedding_of(w) for w in current[:n]])
            candidate_vectors = [
                [self._embedding_of(c) for c in neighbor_sets[i]] for i in range(n)
            ]
            relaxation = modular_relaxation_word2vec(
                original_vectors, candidate_vectors, gradient
            )
            # never re-count already-changed positions against the budget
            weights = relaxation.weights.copy()
            weights[[i for i in range(n) if i in changed]] = 0.0
            order = np.argsort(-weights)
            substitutions: dict[int, str] = {}
            for i in order[:remaining]:
                if weights[i] <= 0:
                    break
                substitutions[int(i)] = neighbor_sets[int(i)][relaxation.best_choice[i] - 1]
            if not substitutions:
                break
            current = apply_word_substitutions(current, substitutions)
            changed.update(substitutions)
            stages.extend(["word"] * len(substitutions))
        return current, stages
