"""Pure gradient word attack — the Gong et al. [18] baseline.

Solves the first-order relaxation (Problem 2 / Proposition 2) in closed
form: linearize ``C_y`` at the current embeddings, score every candidate by
``(V(x_i^{(t)}) − V(x_i)) · ĝ_i``, and apply the top-``budget`` positive
replacements in one shot.  Fast (one gradient + one re-scoring pass) but
weak: the linearization ignores that synonym embeddings are not
infinitesimally close (paper Sec. 4.1, Table 3).

Composition: :class:`~repro.attacks.proposals.WordParaphraseSource` ×
:class:`~repro.attacks.search.FirstOrderSearch`.
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.proposals import WordParaphraseSource
from repro.attacks.search import FirstOrderSearch
from repro.models.base import TextClassifier

__all__ = ["GradientWordAttack"]


class GradientWordAttack(AttackEngine):
    """One-shot first-order (Frank-Wolfe style) word substitution."""

    name = "gradient"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        iterations: int = 1,
    ) -> None:
        source = WordParaphraseSource(paraphraser, word_budget_ratio)
        super().__init__(model, source, FirstOrderSearch(iterations))

    @property
    def paraphraser(self):
        return self.source.paraphraser

    @property
    def word_budget_ratio(self) -> float:
        return self.source.word_budget_ratio

    @property
    def iterations(self) -> int:
        return self.search.iterations
