"""Candidate score caching for the attack hot path.

Greedy attacks re-score documents they have already paid a model forward
for: the incumbent at the start of every stage, subset combinations during
backward pruning, duplicate candidates inside one batch, and — under the
lazy (CELF) strategy — candidates whose stale bounds get re-examined.
:class:`ScoreCache` memoizes ``C_y(doc)`` keyed by
``(tuple(doc), target_label)`` for the duration of one ``attack()`` call,
so ``Attack._score_batch`` forwards only cache misses to the model.

Accounting contract (see ``docs/architecture.md``):

- ``AttackResult.n_queries``   — model forwards actually *paid*;
- ``AttackResult.n_cache_hits`` — requested scores served without a
  forward (cache hits plus intra-batch duplicates);
- ``AttackResult.n_cache_evictions`` — entries dropped by a bounded
  cache (0 for the default unbounded cache).

Caching is only sound for deterministic scoring: ``Attack.attack()`` never
installs a cache while the victim is in training mode or uses Bayesian
inference-time dropout (``inference_dropout > 0``), where two forwards of
the same document legitimately differ.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ScoreCache", "score_key"]


def score_key(doc: Sequence[str], target_label: int) -> tuple:
    """Canonical cache key for ``C_y(doc)``."""
    return (tuple(doc), target_label)


class ScoreCache:
    """Memoizes ``C_y(doc)`` scores within one attack invocation.

    A plain dict with hit/miss counters; unbounded by default — one attack
    call scores at most a few thousand candidates, and the cache dies with
    the call.  Pass ``max_entries`` to bound memory on very long documents:
    once full, the oldest entry is evicted first (insertion order, which
    for a greedy scan approximates least-recently-scored), and every
    eviction is counted so the metrics registry can surface cache pressure.
    """

    __slots__ = ("_scores", "hits", "misses", "evictions", "max_entries")

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._scores: dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.max_entries = max_entries

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, key: tuple) -> bool:
        return key in self._scores

    def get(self, key: tuple) -> float | None:
        """Cached score for ``key``, counting the lookup as hit or miss."""
        score = self._scores.get(key)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def put(self, key: tuple, score: float) -> None:
        if (
            self.max_entries is not None
            and key not in self._scores
            and len(self._scores) >= self.max_entries
        ):
            self._scores.pop(next(iter(self._scores)))
            self.evictions += 1
        self._scores[key] = score

    def clear(self) -> None:
        self._scores.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
