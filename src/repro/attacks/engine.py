"""The attack engine: one loop owner for every source × strategy pair.

:class:`AttackEngine` is the composition point of the paper's Problem 1:
a :class:`~repro.attacks.proposals.CandidateSource` (what can change), a
:class:`~repro.attacks.search.SearchStrategy` (how to search), and this
engine owning everything they share — the scoring choke point
(:meth:`Attack._score_batch`: batching, order-preserving dedup, the
per-call :class:`~repro.attacks.cache.ScoreCache`), the query budget, the
``n_queries`` / ``n_cache_hits`` accounting, and the TraceRecorder /
PhaseProfiler / PerfRecorder instrumentation.  Strategies and sources
never touch the victim directly; they call the helpers below, so every
combination — including ones no attack class predefines, like
char-flip × beam — gets caching, tracing and reconciliation
(``sum(forward.n_forwards) == attack_end.n_queries == AttackResult.n_queries``)
for free.

The public attack classes (:class:`~repro.attacks.greedy_word.ObjectiveGreedyWordAttack`
and friends) are thin subclasses that pick a source and a strategy in
``__init__``; the declarative table in :mod:`repro.attacks.registry` maps
names to those combinations for the CLI and experiment drivers.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.cache import score_key
from repro.attacks.proposals import CandidateSource, Proposal
from repro.attacks.search import SearchStrategy
from repro.models.base import TextClassifier

__all__ = ["AttackEngine"]


class AttackEngine(Attack):
    """Runs one :class:`SearchStrategy` over one :class:`CandidateSource`.

    ``max_queries`` is an optional hard cap on model forwards per
    document: strategies poll :meth:`out_of_queries` each round and stop
    expanding once the cap is hit (the incumbent found so far is still
    returned and judged).  ``None`` (default) leaves termination to τ and
    the ``m``-constraint, exactly as before.

    The cap is *exact*: :meth:`_score_batch` truncates a request to the
    forwards the budget still affords (cache hits stay free), so
    ``AttackResult.n_queries <= max_queries`` holds even when the final
    proposal set is larger than the remaining budget — strategies receive
    scores for the prefix that was affordable (possibly none) and must
    treat a short return as budget exhaustion.  The frontier benchmark
    sweeps budgets and depends on this equality being exact.
    """

    name = "engine"

    def __init__(
        self,
        model: TextClassifier,
        source: CandidateSource,
        search: SearchStrategy,
        *,
        name: str | None = None,
        use_cache: bool = True,
        cache_max_entries: int | None = None,
        max_queries: int | None = None,
        score_fn=None,
    ) -> None:
        super().__init__(model, use_cache=use_cache, cache_max_entries=cache_max_entries)
        if max_queries is not None and max_queries < 1:
            raise ValueError("max_queries must be >= 1")
        self.source = source
        self.search = search
        self.max_queries = max_queries
        if score_fn is not None:
            self.score_fn = score_fn
        if name is not None:
            self.name = name

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        return self.search.run(self, self.source, doc, target_label)

    # -- helpers for sources and strategies ---------------------------------
    def index(
        self,
        source: CandidateSource,
        doc: list[str],
        target_label: int | None = None,
    ) -> Proposal:
        """Index ``doc`` through ``source`` (candidate-gen phase).

        Sources that probe the victim while indexing (e.g. ``GumbelSource``
        fitting its position distribution from a handful of forwards) set
        ``needs_target = True`` and receive ``target_label``; plain sources
        keep the two-argument interface.
        """
        if getattr(source, "needs_target", False):
            return source.index(self, doc, target_label=target_label)
        return source.index(self, doc)

    def score(self, tokens: list[str], target_label: int) -> float:
        """``C_y`` of one document, through the scoring choke point.

        Returns ``0.0`` when the query budget is exhausted and the score is
        not already cached — the caller cannot learn anything more about
        this document, and every strategy loop re-checks
        :meth:`out_of_queries` before acting on the value.
        """
        scores = self._score_batch([list(tokens)], target_label)
        return scores[0] if scores else 0.0

    def score_batch(
        self,
        docs: list[list[str]],
        target_label: int,
        base: list[str] | None = None,
    ) -> list[float]:
        """``C_y`` for a batch — deduped, cached, counted, traced.

        Search strategies pass ``base`` (the incumbent the candidates are
        edits of) so a delta-aware score function can evaluate single-edit
        candidates incrementally instead of with full forwards.
        """
        return self._score_batch(docs, target_label, base=base)

    def _score_batch(
        self,
        docs: list[list[str]],
        target_label: int,
        base: list[str] | None = None,
    ) -> list[float]:
        if self.max_queries is not None and docs:
            docs = self._truncate_to_budget(docs, target_label)
        return super()._score_batch(docs, target_label, base=base)

    def _truncate_to_budget(
        self, docs: list[list[str]], target_label: int
    ) -> list[list[str]]:
        """Longest prefix of ``docs`` the remaining budget can pay for.

        Walks the batch counting the forwards it would cost — with a cache,
        only first occurrences of uncached documents pay (mirroring the
        dedup in :meth:`Attack._score_batch`); without one, every document
        pays.  Cache membership is probed via ``in`` so the walk leaves the
        hit/miss counters untouched.
        """
        remaining = self.max_queries - self._queries
        cache = self._cache
        pending: set = set()
        kept = 0
        for doc in docs:
            if cache is None:
                miss = True
            else:
                key = score_key(doc, target_label)
                miss = key not in pending and key not in cache
            if miss:
                if remaining <= 0:
                    break
                remaining -= 1
                if cache is not None:
                    pending.add(key)
            kept += 1
        return docs if kept == len(docs) else docs[:kept]

    def gradient(self, tokens: list[str], target_label: int):
        """Embedding gradient of ``C_y`` — one counted, traced forward."""
        with self._span("forward"):
            gradient = self.model.embedding_gradient(tokens, target_label)
        self._queries += 1  # gradient pass = one forward scoring
        self._trace_event(
            "forward", op="gradient", n_docs=1, n_forwards=1, n_cache_hits=0
        )
        return gradient

    def span(self, phase: str):
        """Profiler span for a named phase (no-op without a profiler)."""
        return self._span(phase)

    def trace_iteration(self, **fields) -> None:
        """Emit one ``greedy_iteration`` trace event."""
        self._trace_event("greedy_iteration", **fields)

    def out_of_queries(self) -> bool:
        """True once the per-document query budget is exhausted."""
        return self.max_queries is not None and self._queries >= self.max_queries
