"""Adversarial attacks: the paper's Algorithms 1-3 plus baselines.

Every attack is one point in the compositional space of Problem 1 —
a :class:`CandidateSource` (what can change) × a :class:`SearchStrategy`
(how to search) — run by one :class:`AttackEngine` that owns scoring,
caching, query accounting and observability.  The named combinations:

=====================================  ==========================================
Class / registry name                  Paper reference
=====================================  ==========================================
:class:`JointParaphraseAttack`         Algorithm 1 (headline attack, "ours")
:class:`GreedySentenceAttack`          Algorithm 2
:class:`GradientGuidedGreedyAttack`    Algorithm 3
:class:`ObjectiveGreedyWordAttack`     objective-guided greedy, Kuleshov [19]
:class:`GradientWordAttack`            gradient method, Gong [18]
:class:`RandomWordAttack`              random baseline
:class:`BeamSearchWordAttack`          beam-search upper reference
=====================================  ==========================================

See :data:`~repro.attacks.registry.ATTACKS` for the full name → spec
table (including char-flip and CELF lazy variants) and
:func:`~repro.attacks.registry.build_attack` to resolve one by name.
"""

from repro.attacks.base import (
    Attack,
    AttackFailure,
    AttackResult,
    count_word_changes,
    reseed_object,
)
from repro.attacks.beam import BeamSearchWordAttack
from repro.attacks.cache import ScoreCache, score_key
from repro.attacks.charflip import HOMOGLYPHS, CharFlipCandidates
from repro.attacks.engine import AttackEngine
from repro.attacks.gradient_guided import GradientGuidedGreedyAttack
from repro.attacks.gradient_word import GradientWordAttack
from repro.attacks.greedy_word import ObjectiveGreedyWordAttack
from repro.attacks.joint import JointParaphraseAttack
from repro.attacks.paraphrase import ParaphraseConfig, SentenceParaphraser, WordParaphraser
from repro.attacks.proposals import (
    CandidateSource,
    CharFlipSource,
    GradientRankedSource,
    GumbelSource,
    GumbelWordProposal,
    Proposal,
    SentenceParaphraseSource,
    SentenceProposal,
    WordParaphraseSource,
    WordProposal,
)
from repro.attacks.random_attack import RandomWordAttack
from repro.attacks.registry import ATTACKS, AttackSpec, build_attack
from repro.attacks.search import (
    BeamSearch,
    FirstOrderSearch,
    GaussSouthwellSearch,
    GreedySearch,
    HeuristicRankSearch,
    LazyGreedySearch,
    ParticleSwarmSearch,
    RandomSearch,
    SearchStrategy,
    StagedSearch,
)
from repro.attacks.sentence import GreedySentenceAttack
from repro.attacks.transformations import (
    SentenceNeighborSets,
    WordNeighborSets,
    apply_word_substitutions,
    transformation_support,
)

__all__ = [
    "Attack",
    "AttackFailure",
    "AttackResult",
    "count_word_changes",
    "reseed_object",
    "ScoreCache",
    "score_key",
    "CharFlipCandidates",
    "HOMOGLYPHS",
    "ParaphraseConfig",
    "WordParaphraser",
    "SentenceParaphraser",
    "WordNeighborSets",
    "SentenceNeighborSets",
    "apply_word_substitutions",
    "transformation_support",
    # engine layers
    "AttackEngine",
    "Proposal",
    "WordProposal",
    "GumbelWordProposal",
    "SentenceProposal",
    "CandidateSource",
    "WordParaphraseSource",
    "CharFlipSource",
    "SentenceParaphraseSource",
    "GradientRankedSource",
    "GumbelSource",
    "SearchStrategy",
    "GreedySearch",
    "LazyGreedySearch",
    "BeamSearch",
    "RandomSearch",
    "ParticleSwarmSearch",
    "HeuristicRankSearch",
    "FirstOrderSearch",
    "GaussSouthwellSearch",
    "StagedSearch",
    # registry
    "ATTACKS",
    "AttackSpec",
    "build_attack",
    # named attacks
    "JointParaphraseAttack",
    "GreedySentenceAttack",
    "GradientGuidedGreedyAttack",
    "ObjectiveGreedyWordAttack",
    "GradientWordAttack",
    "RandomWordAttack",
    "BeamSearchWordAttack",
]
