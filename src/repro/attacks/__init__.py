"""Adversarial attacks: the paper's Algorithms 1-3 plus baselines.

=====================================  ==========================================
Class                                  Paper reference
=====================================  ==========================================
:class:`JointParaphraseAttack`         Algorithm 1 (headline attack, "ours")
:class:`GreedySentenceAttack`          Algorithm 2
:class:`GradientGuidedGreedyAttack`    Algorithm 3
:class:`ObjectiveGreedyWordAttack`     objective-guided greedy, Kuleshov [19]
:class:`GradientWordAttack`            gradient method, Gong [18]
:class:`RandomWordAttack`              random baseline
=====================================  ==========================================
"""

from repro.attacks.base import Attack, AttackFailure, AttackResult, count_word_changes
from repro.attacks.beam import BeamSearchWordAttack
from repro.attacks.cache import ScoreCache, score_key
from repro.attacks.charflip import HOMOGLYPHS, CharFlipCandidates
from repro.attacks.gradient_guided import GradientGuidedGreedyAttack
from repro.attacks.gradient_word import GradientWordAttack
from repro.attacks.greedy_word import ObjectiveGreedyWordAttack
from repro.attacks.joint import JointParaphraseAttack
from repro.attacks.paraphrase import ParaphraseConfig, SentenceParaphraser, WordParaphraser
from repro.attacks.random_attack import RandomWordAttack
from repro.attacks.sentence import GreedySentenceAttack
from repro.attacks.transformations import (
    SentenceNeighborSets,
    WordNeighborSets,
    apply_word_substitutions,
    transformation_support,
)

__all__ = [
    "Attack",
    "AttackFailure",
    "AttackResult",
    "count_word_changes",
    "ScoreCache",
    "score_key",
    "CharFlipCandidates",
    "HOMOGLYPHS",
    "ParaphraseConfig",
    "WordParaphraser",
    "SentenceParaphraser",
    "WordNeighborSets",
    "SentenceNeighborSets",
    "apply_word_substitutions",
    "transformation_support",
    "JointParaphraseAttack",
    "GreedySentenceAttack",
    "GradientGuidedGreedyAttack",
    "ObjectiveGreedyWordAttack",
    "GradientWordAttack",
    "RandomWordAttack",
    "BeamSearchWordAttack",
]
