"""Greedy Sentence Paraphrasing — the paper's Algorithm 2.

Objective-guided greedy over whole-sentence substitutions: each iteration
scans every (sentence, paraphrase) pair, applies the replacement that most
increases ``C_y``, and repeats until τ is reached or at most ``λ_s · l``
sentences have been paraphrased.  The paper deliberately does *not* use
gradients here: sentence paraphrases change token counts, so gradients
computed before the substitution no longer align with positions (Sec. 5.2).

``strategy="lazy"`` swaps the full rescan for CELF lazy greedy (see
:mod:`repro.attacks.greedy_word` for the rationale); sentence candidate
sets are the paper's most expensive to score, so stale-bound reuse saves
the most forwards here.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.paraphrase import SentenceParaphraser
from repro.models.base import TextClassifier
from repro.submodular.greedy import LazyMarginalHeap
from repro.text.sentence import join_sentences

__all__ = ["GreedySentenceAttack"]


class GreedySentenceAttack(Attack):
    """Algorithm 2: objective-guided greedy sentence paraphrasing."""

    name = "greedy-sentence"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: SentenceParaphraser,
        sentence_budget_ratio: float = 0.2,
        tau: float = 0.7,
        strategy: str = "scan",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        super().__init__(
            model, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        if not 0.0 <= sentence_budget_ratio <= 1.0:
            raise ValueError("sentence_budget_ratio must be in [0, 1]")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if strategy not in ("scan", "lazy"):
            raise ValueError("strategy must be 'scan' or 'lazy'")
        self.paraphraser = paraphraser
        self.sentence_budget_ratio = sentence_budget_ratio
        self.tau = tau
        self.strategy = strategy

    @staticmethod
    def _apply(current: list[list[str]], j: int, sentence: list[str]) -> list[list[str]]:
        return current[:j] + [list(sentence)] + current[j + 1 :]

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        if self.strategy == "lazy":
            return self._run_lazy(doc, target_label)
        with self._span("candidate-gen"):
            sentences, neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(round(self.sentence_budget_ratio * len(sentences)))
        current = [list(s) for s in sentences]
        current_score = self._score(join_sentences(current), target_label)
        paraphrased: set[int] = set()
        stages: list[str] = []
        while current_score < self.tau and len(paraphrased) < budget:
            candidates: list[list[str]] = []
            meta: list[tuple[int, list[str]]] = []
            for j in neighbor_sets.attackable_sentences:
                for cand_sentence in neighbor_sets[j]:
                    if cand_sentence == current[j]:
                        continue
                    candidates.append(join_sentences(self._apply(current, j, cand_sentence)))
                    meta.append((j, list(cand_sentence)))
            if not candidates:
                break
            with self._span("greedy-select"):
                scores = self._score_batch(candidates, target_label)
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= current_score + 1e-12:
                break
            j, new_sentence = meta[best]
            self._trace_event(
                "greedy_iteration",
                stage="sentence",
                iteration=len(stages),
                positions=[j],
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - current_score,
                rescans=0,
            )
            current[j] = new_sentence
            current_score = scores[best]
            if new_sentence == sentences[j]:
                paraphrased.discard(j)
            else:
                paraphrased.add(j)
            stages.append("sentence")
        return join_sentences(current), stages

    def _run_lazy(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        """CELF variant over (sentence index, paraphrase index) moves."""
        with self._span("candidate-gen"):
            sentences, neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(round(self.sentence_budget_ratio * len(sentences)))
        current = [list(s) for s in sentences]
        current_score = self._score(join_sentences(current), target_label)
        paraphrased: set[int] = set()
        stages: list[str] = []
        if budget == 0 or current_score >= self.tau:
            return join_sentences(current), stages
        # moves are indexed, not hashed by content: (sentence j, candidate t)
        moves: list[tuple[int, list[str]]] = [
            (j, list(cand))
            for j in neighbor_sets.attackable_sentences
            for cand in neighbor_sets[j]
        ]

        def rebuild_heap() -> LazyMarginalHeap | None:
            admissible = [i for i, (j, cand) in enumerate(moves) if cand != current[j]]
            if not admissible:
                return None
            scores = self._score_batch(
                [
                    join_sentences(self._apply(current, moves[i][0], moves[i][1]))
                    for i in admissible
                ],
                target_label,
            )
            heap = LazyMarginalHeap()
            heap.push_all(
                (i, s - current_score) for i, s in zip(admissible, scores)
            )
            return heap

        heap = rebuild_heap()
        fresh_heap = True
        while heap is not None and current_score < self.tau and len(paraphrased) < budget:
            rescans = 0

            def fresh_gain(idx: int) -> float | None:
                nonlocal rescans
                rescans += 1
                j, cand = moves[idx]
                if cand == current[j]:
                    return None  # already applied
                candidate = join_sentences(self._apply(current, j, cand))
                return self._score_batch([candidate], target_label)[0] - current_score

            with self._span("greedy-select"):
                n_candidates = len(heap)
                picked = heap.select(fresh_gain, tolerance=1e-12)
            if picked is None:
                # stale bounds are exact only under submodularity: confirm
                # exhaustion with one batched rescan before terminating
                if fresh_heap:
                    break
                heap = rebuild_heap()
                fresh_heap = True
                continue
            idx, gain = picked
            j, new_sentence = moves[idx]
            current[j] = new_sentence
            current_score += gain
            self._trace_event(
                "greedy_iteration",
                stage="sentence",
                iteration=len(stages),
                positions=[j],
                n_candidates=n_candidates,
                best_objective=current_score,
                marginal_gain=gain,
                rescans=rescans,
            )
            if new_sentence == sentences[j]:
                paraphrased.discard(j)
            else:
                paraphrased.add(j)
            stages.append("sentence")
            fresh_heap = False
        return join_sentences(current), stages
