"""Greedy Sentence Paraphrasing — the paper's Algorithm 2.

Objective-guided greedy over whole-sentence substitutions: each iteration
scans every (sentence, paraphrase) pair, applies the replacement that most
increases ``C_y``, and repeats until τ is reached or at most ``λ_s · l``
sentences have been paraphrased.  The paper deliberately does *not* use
gradients here: sentence paraphrases change token counts, so gradients
computed before the substitution no longer align with positions (Sec. 5.2).
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.paraphrase import SentenceParaphraser
from repro.models.base import TextClassifier
from repro.text.sentence import join_sentences

__all__ = ["GreedySentenceAttack"]


class GreedySentenceAttack(Attack):
    """Algorithm 2: objective-guided greedy sentence paraphrasing."""

    name = "greedy-sentence"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: SentenceParaphraser,
        sentence_budget_ratio: float = 0.2,
        tau: float = 0.7,
    ) -> None:
        super().__init__(model)
        if not 0.0 <= sentence_budget_ratio <= 1.0:
            raise ValueError("sentence_budget_ratio must be in [0, 1]")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        self.paraphraser = paraphraser
        self.sentence_budget_ratio = sentence_budget_ratio
        self.tau = tau

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        sentences, neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(round(self.sentence_budget_ratio * len(sentences)))
        current = [list(s) for s in sentences]
        current_score = self._score(join_sentences(current), target_label)
        paraphrased: set[int] = set()
        stages: list[str] = []
        while current_score < self.tau and len(paraphrased) < budget:
            candidates: list[list[str]] = []
            meta: list[tuple[int, list[str]]] = []
            for j in neighbor_sets.attackable_sentences:
                for cand_sentence in neighbor_sets[j]:
                    if cand_sentence == current[j]:
                        continue
                    variant = current[:j] + [list(cand_sentence)] + current[j + 1 :]
                    candidates.append(join_sentences(variant))
                    meta.append((j, list(cand_sentence)))
            if not candidates:
                break
            scores = self._score_batch(candidates, target_label)
            best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= current_score + 1e-12:
                break
            j, new_sentence = meta[best]
            current[j] = new_sentence
            current_score = scores[best]
            if new_sentence == sentences[j]:
                paraphrased.discard(j)
            else:
                paraphrased.add(j)
            stages.append("sentence")
        return join_sentences(current), stages
