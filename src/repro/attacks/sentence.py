"""Greedy Sentence Paraphrasing — the paper's Algorithm 2.

Objective-guided greedy over whole-sentence substitutions: each iteration
scans every (sentence, paraphrase) pair, applies the replacement that most
increases ``C_y``, and repeats until τ is reached or at most ``λ_s · l``
sentences have been paraphrased.  The paper deliberately does *not* use
gradients here: sentence paraphrases change token counts, so gradients
computed before the substitution no longer align with positions (Sec. 5.2).

Composition: :class:`~repro.attacks.proposals.SentenceParaphraseSource` ×
:class:`~repro.attacks.search.GreedySearch`; ``strategy="lazy"`` swaps in
:class:`~repro.attacks.search.LazyGreedySearch` (sentence candidate sets
are the paper's most expensive to score, so stale-bound reuse saves the
most forwards here).
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import SentenceParaphraser
from repro.attacks.proposals import SentenceParaphraseSource
from repro.attacks.search import GreedySearch, LazyGreedySearch
from repro.models.base import TextClassifier

__all__ = ["GreedySentenceAttack"]


class GreedySentenceAttack(AttackEngine):
    """Algorithm 2: objective-guided greedy sentence paraphrasing."""

    name = "greedy-sentence"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: SentenceParaphraser,
        sentence_budget_ratio: float = 0.2,
        tau: float = 0.7,
        strategy: str = "scan",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        if strategy not in ("scan", "lazy"):
            raise ValueError("strategy must be 'scan' or 'lazy'")
        source = SentenceParaphraseSource(paraphraser, sentence_budget_ratio)
        search = GreedySearch(tau) if strategy == "scan" else LazyGreedySearch(tau)
        super().__init__(
            model, source, search, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        self.strategy = strategy

    @property
    def paraphraser(self):
        return self.source.paraphraser

    @property
    def sentence_budget_ratio(self) -> float:
        return self.source.sentence_budget_ratio

    @property
    def tau(self) -> float:
        return self.search.tau
