"""Gradient-Guided Greedy Word Paraphrasing — the paper's Algorithm 3.

Each iteration:

1. Compute the Gauss–Southwell scores ``p_i = ‖∇_i C_y(v)‖₂`` — the
   gradient norm of the target probability w.r.t. each word's embedding.
2. Select the ``N`` highest-scoring positions (paper: N = 5).
3. Build the candidate set ``M`` of *joint* substitutions over those
   positions: starting from ``{x}``, for each selected position extend
   every member of ``M`` with every candidate word, keeping the partial
   combinations (steps 7-15 of Alg. 3).
4. Move to the best-scoring member of ``M``.

The joint candidate set captures interaction effects between replacements
that one-word-at-a-time greedy misses, while the gradient preselection
keeps the search space small — the efficiency/effectiveness combination
Table 3 quantifies.

Composition: :class:`~repro.attacks.proposals.GradientRankedSource`
(position selection + candidate ordering) ×
:class:`~repro.attacks.search.GaussSouthwellSearch` (joint product,
backward pruning, skip-fallback).
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.proposals import GradientRankedSource, WordParaphraseSource
from repro.attacks.search import GaussSouthwellSearch
from repro.models.base import TextClassifier

__all__ = ["GradientGuidedGreedyAttack"]


class GradientGuidedGreedyAttack(AttackEngine):
    """Algorithm 3: Gauss–Southwell selection + joint candidate search."""

    name = "gradient-guided-greedy"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
        words_per_iteration: int = 5,
        max_candidates: int = 128,
        per_position_cap: int = 2,
        max_iterations: int = 50,
        selection: str = "modular",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        source = GradientRankedSource(
            WordParaphraseSource(paraphraser, word_budget_ratio), selection=selection
        )
        search = GaussSouthwellSearch(
            tau,
            words_per_iteration=words_per_iteration,
            max_candidates=max_candidates,
            per_position_cap=per_position_cap,
            max_iterations=max_iterations,
        )
        super().__init__(
            model, source, search, use_cache=use_cache, cache_max_entries=cache_max_entries
        )

    # public config, mirrored from the composed layers
    @property
    def paraphraser(self):
        return self.source.inner.paraphraser

    @property
    def word_budget_ratio(self) -> float:
        return self.source.inner.word_budget_ratio

    @property
    def tau(self) -> float:
        return self.search.tau

    @property
    def words_per_iteration(self) -> int:
        return self.search.words_per_iteration

    @property
    def max_candidates(self) -> int:
        return self.search.max_candidates

    @property
    def per_position_cap(self) -> int:
        return self.search.per_position_cap

    @property
    def max_iterations(self) -> int:
        return self.search.max_iterations

    @property
    def selection(self) -> str:
        return self.source.selection

    @property
    def _selection_rng(self):
        return self.source._selection_rng

    def _prune(
        self,
        substitutions: dict[int, str],
        current: list[str],
        best_score: float,
        target_label: int,
    ) -> dict[int, str]:
        """Backward pruning (see :meth:`GaussSouthwellSearch.prune`)."""
        return self.search.prune(self, substitutions, current, best_score, target_label)
