"""Gradient-Guided Greedy Word Paraphrasing — the paper's Algorithm 3.

Each iteration:

1. Compute the Gauss–Southwell scores ``p_i = ‖∇_i C_y(v)‖₂`` — the
   gradient norm of the target probability w.r.t. each word's embedding.
2. Select the ``N`` highest-scoring positions (paper: N = 5).
3. Build the candidate set ``M`` of *joint* substitutions over those
   positions: starting from ``{x}``, for each selected position extend
   every member of ``M`` with every candidate word, keeping the partial
   combinations (steps 7-15 of Alg. 3).
4. Move to the best-scoring member of ``M``.

The joint candidate set captures interaction effects between replacements
that one-word-at-a-time greedy misses, while the gradient preselection
keeps the search space small — the efficiency/effectiveness combination
Table 3 quantifies.

Because ``|M| = Π (1 + |W_j|)`` grows exponentially in ``N``, the set is
beam-limited to ``max_candidates`` members (candidate lists per position are
also capped) — the paper's settings stay well under the default limit for
typical filtered neighbor sets.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.transformations import apply_word_substitutions
from repro.models.base import TextClassifier

__all__ = ["GradientGuidedGreedyAttack"]


class GradientGuidedGreedyAttack(Attack):
    """Algorithm 3: Gauss–Southwell selection + joint candidate search."""

    name = "gradient-guided-greedy"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
        words_per_iteration: int = 5,
        max_candidates: int = 128,
        per_position_cap: int = 2,
        max_iterations: int = 50,
        selection: str = "modular",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        super().__init__(
            model, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if words_per_iteration < 1:
            raise ValueError("words_per_iteration must be >= 1")
        if selection not in ("modular", "gs_norm", "random"):
            raise ValueError("selection must be 'modular', 'gs_norm' or 'random'")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.tau = tau
        self.words_per_iteration = words_per_iteration
        self.max_candidates = max_candidates
        self.per_position_cap = per_position_cap
        self.max_iterations = max_iterations
        self.selection = selection
        self._selection_rng = np.random.default_rng(0)
        self._candidate_order: dict[int, list[str]] = {}

    def _select_positions(
        self,
        current: list[str],
        target_label: int,
        neighbor_sets,
        changed: set[int],
        remaining_budget: int,
        skip: int = 0,
    ) -> list[int]:
        """N attackable positions by embedding-gradient norm, after ``skip``.

        ``skip`` implements the fallback: when the top-N batch produced no
        improvement, the caller retries with the next batch down the
        gradient ranking instead of giving up (positions the greedy scan
        would eventually reach anyway).

        Three selection rules (ablated in the benchmarks):

        - ``"modular"`` (default): the Proposition-2 weight
          ``w_i = max_t (V(x_i^{(t)}) − V(x_i)) · ∇_i`` — the first-order
          estimate of the gain *realizable by the actual candidates*;
        - ``"gs_norm"``: the raw Gauss–Southwell score ``‖∇_i C_y‖₂`` as
          written in Alg. 3 step 4, which measures sensitivity in *any*
          direction, including ones no candidate realizes;
        - ``"random"``: uniformly random positions (the no-gradient
          control from the Gauss–Southwell literature).
        """
        n = min(len(current), self.model.max_len)
        self._candidate_order = {}
        if self.selection == "random":
            scores = self._selection_rng.random(n)
        else:
            with self._span("forward"):
                gradient = self.model.embedding_gradient(current, target_label)
            self._queries += 1
            self._trace_event(
                "forward", op="gradient", n_docs=1, n_forwards=1, n_cache_hits=0
            )
            if self.selection == "gs_norm":
                scores = np.linalg.norm(gradient, axis=1)
            else:  # modular
                emb = self.model.embedding.weight.data
                vocab = self.model.vocab
                scores = np.zeros(n)
                for i in range(n):
                    orig = emb[vocab.id(current[i])]
                    gains = [
                        (float((emb[vocab.id(cand)] - orig) @ gradient[i]), cand)
                        for cand in neighbor_sets[i]
                    ]
                    if gains:
                        gains.sort(key=lambda gc: -gc[0])
                        scores[i] = max(0.0, gains[0][0])
                        # candidates ranked by estimated gain keep the joint
                        # product small without losing the best moves
                        self._candidate_order[i] = [c for _, c in gains]
        attackable = [i for i in neighbor_sets.attackable_positions if i < len(scores)]
        # Unchanged positions consume budget; already-changed positions may be
        # re-paraphrased for free. Prefer high-gradient positions either way.
        ranked = sorted(attackable, key=lambda i: -scores[i])[skip:]
        selected: list[int] = []
        budget_left = remaining_budget - len(changed)
        for i in ranked:
            if len(selected) >= self.words_per_iteration:
                break
            if i in changed:
                selected.append(i)
            elif budget_left > 0:
                selected.append(i)
                budget_left -= 1
        return selected

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        with self._span("candidate-gen"):
            neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        current = list(doc)
        current_score = self._score(current, target_label)
        changed: set[int] = set()
        stages: list[str] = []
        skip = 0
        for _ in range(self.max_iterations):
            if current_score >= self.tau or len(changed) >= budget:
                break
            selected = self._select_positions(
                current, target_label, neighbor_sets, changed, budget, skip=skip
            )
            if not selected:
                break
            # steps 7-15: joint candidate product over the selected positions
            frontier: list[dict[int, str]] = [{}]
            for j in selected:
                ordered = self._candidate_order.get(j, neighbor_sets[j])
                extensions: list[dict[int, str]] = []
                for partial in frontier:
                    for word in ordered[: self.per_position_cap]:
                        if word == current[j]:
                            continue
                        extensions.append({**partial, j: word})
                        if len(frontier) + len(extensions) >= self.max_candidates:
                            break
                    if len(frontier) + len(extensions) >= self.max_candidates:
                        break
                frontier = frontier + extensions
            frontier = [f for f in frontier if f]
            if not frontier:
                break
            candidates = [apply_word_substitutions(current, subs) for subs in frontier]
            with self._span("greedy-select"):
                scores = self._score_batch(candidates, target_label)
                best = max(range(len(scores)), key=scores.__getitem__)
            if scores[best] <= current_score + 1e-12:
                # This batch of positions cannot improve; fall back to the
                # next batch down the gradient ranking.
                skip += self.words_per_iteration
                continue
            skip = 0
            subs = self._prune(frontier[best], current, scores[best], target_label)
            self._trace_event(
                "greedy_iteration",
                stage="word",
                iteration=len(stages),
                positions=sorted(subs),
                n_candidates=len(candidates),
                best_objective=scores[best],
                marginal_gain=scores[best] - current_score,
                rescans=0,
            )
            current = apply_word_substitutions(current, subs)
            current_score = scores[best]
            for pos in subs:
                if current[pos] != doc[pos]:
                    changed.add(pos)
                else:
                    changed.discard(pos)
            stages.extend(["word"] * len(subs))
        return current, stages

    def _prune(
        self,
        substitutions: dict[int, str],
        current: list[str],
        best_score: float,
        target_label: int,
    ) -> dict[int, str]:
        """Backward pruning: drop substitutions that don't pay their way.

        The joint candidate search can include replacements contributing
        only epsilon to the combined score; each such replacement still
        consumes a unit of the distinct-word budget.  Removing each
        substitution in turn and keeping the removal whenever the score
        does not drop refunds that budget at a cost of |combo| extra
        queries.
        """
        if len(substitutions) <= 1:
            return substitutions
        kept = dict(substitutions)
        for pos in sorted(substitutions):
            if len(kept) == 1:
                break
            trial = {p: w for p, w in kept.items() if p != pos}
            score = self._score_batch(
                [apply_word_substitutions(current, trial)], target_label
            )[0]
            if score >= best_score - 1e-12:
                kept = trial
                best_score = score
        return kept
