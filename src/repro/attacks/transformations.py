"""Compatibility shim — the transformation data structures live in
:mod:`repro.text.transformations` now.

They are pure token-level containers with no dependence on the attack
layer, and lower layers (``repro.data.urls``, ``repro.submodular.empirical``)
need them too; hosting them here inverted the import layering
(``nn → text/models → attacks → eval → experiments``).  This module
re-exports them so existing ``repro.attacks.transformations`` imports and
the ``repro.attacks`` public API keep working.
"""

from repro.text.transformations import (
    SentenceNeighborSets,
    WordNeighborSets,
    apply_word_substitutions,
    transformation_support,
)

__all__ = [
    "WordNeighborSets",
    "SentenceNeighborSets",
    "apply_word_substitutions",
    "transformation_support",
]
