"""Joint Sentence and Word Paraphrasing — the paper's Algorithm 1.

Stage 1 (steps 2-5): split into sentences, build the sentence neighbor sets
``S`` (WMD-filtered), and run Greedy Sentence Paraphrasing (Alg. 2).  If τ
is reached, stop.

Stage 2 (steps 6-9): re-tokenize into words, build the word neighbor sets
``W`` (WMD- and LM-filtered), and run Gradient-Guided Greedy Word
Paraphrasing (Alg. 3) on the sentence-paraphrased document.

This is the headline attack used for Table 2, Figure 4, Table 4 and the
adversarial training of Table 5.

Composition: :class:`~repro.attacks.search.StagedSearch` over
(sentence-paraphrase × greedy) then (word × Alg. 3 or greedy).  Both
stages run on the *same* engine, so they share one per-call
:class:`~repro.attacks.cache.ScoreCache` — the sentence-stage winner is
never re-paid when the word stage starts, and the word stage's pruning
subsets hit the scores the joint search already paid for.
``word_attack="objective-greedy"`` swaps Alg. 3 for the greedy baseline
word stage (with optional CELF ``strategy="lazy"``) — the configuration
the inference-perf benchmark uses.
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import SentenceParaphraser, WordParaphraser
from repro.attacks.proposals import (
    GradientRankedSource,
    SentenceParaphraseSource,
    WordParaphraseSource,
)
from repro.attacks.search import (
    GaussSouthwellSearch,
    GreedySearch,
    LazyGreedySearch,
    SearchStrategy,
    StagedSearch,
)
from repro.models.base import TextClassifier

__all__ = ["JointParaphraseAttack"]


class JointParaphraseAttack(AttackEngine):
    """Algorithm 1: sentence stage then word stage."""

    name = "joint-paraphrase"

    def __init__(
        self,
        model: TextClassifier,
        word_paraphraser: WordParaphraser,
        sentence_paraphraser: SentenceParaphraser,
        word_budget_ratio: float = 0.2,
        sentence_budget_ratio: float = 0.2,
        tau: float = 0.7,
        words_per_iteration: int = 5,
        word_attack: str = "gradient-guided",
        strategy: str = "scan",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        if word_attack not in ("gradient-guided", "objective-greedy"):
            raise ValueError("word_attack must be 'gradient-guided' or 'objective-greedy'")
        if strategy not in ("scan", "lazy"):
            raise ValueError("strategy must be 'scan' or 'lazy'")
        sentence_source = SentenceParaphraseSource(
            sentence_paraphraser, sentence_budget_ratio
        )
        sentence_search = GreedySearch(tau) if strategy == "scan" else LazyGreedySearch(tau)
        word_source = WordParaphraseSource(word_paraphraser, word_budget_ratio)
        if word_attack == "gradient-guided":
            word_stage = (
                GradientRankedSource(word_source),
                GaussSouthwellSearch(tau, words_per_iteration=words_per_iteration),
            )
        else:
            word_stage = (
                word_source,
                GreedySearch(tau) if strategy == "scan" else LazyGreedySearch(tau),
            )
        search: SearchStrategy = StagedSearch(
            [(sentence_source, sentence_search), word_stage], tau=tau
        )
        super().__init__(
            model,
            sentence_source,
            search,
            use_cache=use_cache,
            cache_max_entries=cache_max_entries,
        )
        self.word_attack = word_attack
        self.strategy = strategy

    @property
    def tau(self) -> float:
        return self.search.tau
