"""Joint Sentence and Word Paraphrasing — the paper's Algorithm 1.

Stage 1 (steps 2-5): split into sentences, build the sentence neighbor sets
``S`` (WMD-filtered), and run Greedy Sentence Paraphrasing (Alg. 2).  If τ
is reached, stop.

Stage 2 (steps 6-9): re-tokenize into words, build the word neighbor sets
``W`` (WMD- and LM-filtered), and run Gradient-Guided Greedy Word
Paraphrasing (Alg. 3) on the sentence-paraphrased document.

This is the headline attack used for Table 2, Figure 4, Table 4 and the
adversarial training of Table 5.

Both stages score through the *same* per-call :class:`ScoreCache`, so the
sentence-stage winner is never re-paid when the word stage starts, and the
word stage's pruning subsets hit the scores the joint search already paid
for.  ``word_attack="objective-greedy"`` swaps Alg. 3 for the greedy
baseline word stage (with optional CELF ``strategy="lazy"``) — the
configuration the inference-perf benchmark uses.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.gradient_guided import GradientGuidedGreedyAttack
from repro.attacks.greedy_word import ObjectiveGreedyWordAttack
from repro.attacks.paraphrase import SentenceParaphraser, WordParaphraser
from repro.attacks.sentence import GreedySentenceAttack
from repro.models.base import TextClassifier

__all__ = ["JointParaphraseAttack"]


class JointParaphraseAttack(Attack):
    """Algorithm 1: sentence stage then word stage."""

    name = "joint-paraphrase"

    def __init__(
        self,
        model: TextClassifier,
        word_paraphraser: WordParaphraser,
        sentence_paraphraser: SentenceParaphraser,
        word_budget_ratio: float = 0.2,
        sentence_budget_ratio: float = 0.2,
        tau: float = 0.7,
        words_per_iteration: int = 5,
        word_attack: str = "gradient-guided",
        strategy: str = "scan",
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        super().__init__(
            model, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        if word_attack not in ("gradient-guided", "objective-greedy"):
            raise ValueError("word_attack must be 'gradient-guided' or 'objective-greedy'")
        self.sentence_stage = GreedySentenceAttack(
            model,
            sentence_paraphraser,
            sentence_budget_ratio=sentence_budget_ratio,
            tau=tau,
            strategy=strategy,
            use_cache=use_cache,
        )
        if word_attack == "gradient-guided":
            self.word_stage: Attack = GradientGuidedGreedyAttack(
                model,
                word_paraphraser,
                word_budget_ratio=word_budget_ratio,
                tau=tau,
                words_per_iteration=words_per_iteration,
                use_cache=use_cache,
            )
        else:
            self.word_stage = ObjectiveGreedyWordAttack(
                model,
                word_paraphraser,
                word_budget_ratio=word_budget_ratio,
                tau=tau,
                strategy=strategy,
                use_cache=use_cache,
            )
        self.tau = tau

    def _run_stage(self, stage: Attack, doc: list[str], target_label: int):
        """Run a sub-attack's search under this attack's query accounting.

        The shared :class:`ScoreCache` is handed down so scores paid in one
        stage are hits in the next, and the per-document trace is handed
        down so stage events land in the same file (the ``stage`` field on
        ``greedy_iteration`` events tells them apart).
        """
        stage._queries = 0
        stage._cache_hits = 0
        stage._cache = self._cache
        stage._trace = self._trace
        try:
            return stage._run(doc, target_label)
        finally:
            self._queries += stage._queries
            self._cache_hits += stage._cache_hits
            stage._cache = None
            stage._trace = None

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        # Stage 1: sentence paraphrasing (Alg. 2)
        after_sentences, sentence_stages = self._run_stage(
            self.sentence_stage, doc, target_label
        )
        score = self._score(after_sentences, target_label)
        if score >= self.tau:
            return after_sentences, sentence_stages
        # Stage 2: word paraphrasing (Alg. 3) on the sentence-level output
        adversarial, word_stages = self._run_stage(
            self.word_stage, after_sentences, target_label
        )
        return adversarial, sentence_stages + word_stages
