"""Joint Sentence and Word Paraphrasing — the paper's Algorithm 1.

Stage 1 (steps 2-5): split into sentences, build the sentence neighbor sets
``S`` (WMD-filtered), and run Greedy Sentence Paraphrasing (Alg. 2).  If τ
is reached, stop.

Stage 2 (steps 6-9): re-tokenize into words, build the word neighbor sets
``W`` (WMD- and LM-filtered), and run Gradient-Guided Greedy Word
Paraphrasing (Alg. 3) on the sentence-paraphrased document.

This is the headline attack used for Table 2, Figure 4, Table 4 and the
adversarial training of Table 5.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.gradient_guided import GradientGuidedGreedyAttack
from repro.attacks.paraphrase import SentenceParaphraser, WordParaphraser
from repro.attacks.sentence import GreedySentenceAttack
from repro.models.base import TextClassifier

__all__ = ["JointParaphraseAttack"]


class JointParaphraseAttack(Attack):
    """Algorithm 1: sentence stage then word stage."""

    name = "joint-paraphrase"

    def __init__(
        self,
        model: TextClassifier,
        word_paraphraser: WordParaphraser,
        sentence_paraphraser: SentenceParaphraser,
        word_budget_ratio: float = 0.2,
        sentence_budget_ratio: float = 0.2,
        tau: float = 0.7,
        words_per_iteration: int = 5,
    ) -> None:
        super().__init__(model)
        self.sentence_stage = GreedySentenceAttack(
            model,
            sentence_paraphraser,
            sentence_budget_ratio=sentence_budget_ratio,
            tau=tau,
        )
        self.word_stage = GradientGuidedGreedyAttack(
            model,
            word_paraphraser,
            word_budget_ratio=word_budget_ratio,
            tau=tau,
            words_per_iteration=words_per_iteration,
        )
        self.tau = tau

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        # Stage 1: sentence paraphrasing (Alg. 2)
        self.sentence_stage._queries = 0
        after_sentences, sentence_stages = self.sentence_stage._run(doc, target_label)
        self._queries += self.sentence_stage._queries
        score = self._score(after_sentences, target_label)
        if score >= self.tau:
            return after_sentences, sentence_stages
        # Stage 2: word paraphrasing (Alg. 3) on the sentence-level output
        self.word_stage._queries = 0
        adversarial, word_stages = self.word_stage._run(after_sentences, target_label)
        self._queries += self.word_stage._queries
        return adversarial, sentence_stages + word_stages
