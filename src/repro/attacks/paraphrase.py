"""Word- and sentence-paraphrase candidate generation with semantic and
syntactic filters (paper Sec. 5.1, Alg. 1 steps 3 and 7).

Candidates come from the domain synonym lexicon (standing in for
Paragram-SL999 word vectors and the Para-nmt-50m sentence paraphraser — see
DESIGN.md) and are filtered by:

- *semantic similarity*: WMD-based similarity at least ``delta_w`` (words) /
  ``delta_s`` (sentences), on the paper's [0, 1] scale where 1 = identical;
- *syntactic similarity*: language-model constraint
  ``|ln P(x) − ln P(x')| ≤ delta_lm`` (words only, as in Alg. 1).

Sentence paraphrases are produced by meaning-preserving rewrite rules:
simultaneous synonym substitution, intensifier insertion/removal, copula
tense shift, and coordinate-clause reordering.
"""

from __future__ import annotations

import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.transformations import SentenceNeighborSets, WordNeighborSets
from repro.data.lexicon import DomainLexicon
from repro.text.ngram_lm import NGramLM
from repro.text.sentence import split_sentences
from repro.text.wmd import wmd_similarity, word_similarity

__all__ = ["ParaphraseConfig", "WordParaphraser", "SentenceParaphraser"]

_INTENSIFIERS = ("very", "really", "quite", "so")
_COPULA_SWAPS = {"was": "is", "is": "was", "were": "are", "are": "were"}


@dataclass
class ParaphraseConfig:
    """Candidate-generation thresholds (paper Sec. 6.2 defaults).

    ``delta_w`` / ``delta_s`` are similarity thresholds in [0, 1] (paper:
    0.75); ``delta_lm`` bounds the log-probability drift (paper: δ² = 2 for
    news/yelp, ∞ for the spam corpus); ``k`` caps each neighbor set
    (paper: 15).
    """

    k: int = 15
    delta_w: float = 0.75
    delta_s: float = 0.75
    delta_lm: float = float("inf")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        for name in ("delta_w", "delta_s"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.delta_lm < 0:
            raise ValueError("delta_lm must be non-negative")


class WordParaphraser:
    """Builds the word neighbor sets ``W_i`` (Alg. 1 step 7)."""

    def __init__(
        self,
        lexicon: DomainLexicon,
        vectors: Mapping[str, np.ndarray],
        lm: NGramLM | None = None,
        config: ParaphraseConfig | None = None,
    ) -> None:
        self.lexicon = lexicon
        self.vectors = vectors
        self.lm = lm
        self.config = config or ParaphraseConfig()
        if self.config.delta_lm != float("inf") and lm is None:
            raise ValueError("a language model is required for a finite delta_lm")
        #: optional PhaseProfiler: times the LM filter, the dominant cost of
        #: neighbor-set construction when delta_lm is finite
        self.profiler = None
        # candidates_for_word is a pure function of (word, lexicon, vectors,
        # config), all fixed after construction — memoize it so repeated
        # words across a corpus pay the WMD filter once.
        self._word_cache: dict[str, tuple[str, ...]] = {}

    def candidates_for_word(self, word: str) -> list[str]:
        """Synonym candidates passing the WMD similarity filter."""
        cached = self._word_cache.get(word)
        if cached is None:
            cfg = self.config
            out = []
            for cand in self.lexicon.synonyms(word):
                if word_similarity(word, cand, self.vectors) >= cfg.delta_w:
                    out.append(cand)
                if len(out) >= cfg.k:
                    break
            cached = tuple(out)
            self._word_cache[word] = cached
        return list(cached)

    def _lm_delta(self, tokens: list[str], position: int, new_word: str) -> float:
        """``|ln P(x) − ln P(x')|`` computed from the affected n-grams only.

        Replacing token ``i`` changes exactly the conditional terms whose
        context window covers position ``i`` — ``order`` terms — so the full
        document need not be rescored.
        """
        assert self.lm is not None
        order = self.lm.order
        replaced = list(tokens)
        replaced[position] = new_word
        history_a = list(tokens) + ["</s>"]
        history_b = replaced + ["</s>"]
        delta = 0.0
        for j in range(position, min(len(history_a), position + order)):
            delta += self.lm.token_log_prob(history_b[:j], history_b[j])
            delta -= self.lm.token_log_prob(history_a[:j], history_a[j])
        return abs(delta)

    def neighbor_sets(self, tokens: Sequence[str]) -> WordNeighborSets:
        """``W = {W_1..W_n}`` for a document, applying both filters."""
        tokens = list(tokens)
        cfg = self.config
        sets: list[list[str]] = []
        for i, word in enumerate(tokens):
            cands = self.candidates_for_word(word)
            if cands and self.lm is not None and np.isfinite(cfg.delta_lm):
                if self.profiler is not None:
                    with self.profiler.span("lm-filter"):
                        cands = [
                            c for c in cands if self._lm_delta(tokens, i, c) <= cfg.delta_lm
                        ]
                else:
                    cands = [
                        c for c in cands if self._lm_delta(tokens, i, c) <= cfg.delta_lm
                    ]
            sets.append(cands)
        return WordNeighborSets(sets)


class SentenceParaphraser:
    """Builds the sentence neighbor sets ``S_i`` (Alg. 1 step 3).

    Produces meaning-preserving rewrites of each sentence and keeps those
    with relaxed-WMD similarity at least ``delta_s`` to the original, up to
    ``k`` per sentence.
    """

    def __init__(
        self,
        lexicon: DomainLexicon,
        vectors: Mapping[str, np.ndarray],
        config: ParaphraseConfig | None = None,
        n_synonym_variants: int = 8,
    ) -> None:
        self.lexicon = lexicon
        self.vectors = vectors
        self.config = config or ParaphraseConfig()
        self.n_synonym_variants = n_synonym_variants
        # paraphrases() is deterministic per sentence (its RNG is seeded from
        # the sentence content), so identical sentences across a corpus can
        # share one relaxed-WMD filtering pass.
        self._sentence_cache: dict[tuple[str, ...], tuple[tuple[str, ...], ...]] = {}

    # -- rewrite rules -----------------------------------------------------
    def _synonym_variants(self, sent: list[str], rng: np.random.Generator) -> list[list[str]]:
        """Replace a random subset of clustered words by random synonyms."""
        positions = [i for i, w in enumerate(sent) if self.lexicon.synonyms(w)]
        variants = []
        for _ in range(self.n_synonym_variants):
            if not positions:
                break
            n_swap = int(rng.integers(1, len(positions) + 1))
            chosen = rng.choice(positions, size=n_swap, replace=False)
            new = list(sent)
            for i in chosen:
                syns = self.lexicon.synonyms(sent[i])
                new[i] = str(rng.choice(syns))
            variants.append(new)
        return variants

    @staticmethod
    def _intensifier_removal(sent: list[str]) -> list[list[str]]:
        if any(w in _INTENSIFIERS for w in sent):
            return [[w for w in sent if w not in _INTENSIFIERS]]
        return []

    @staticmethod
    def _intensifier_insertion(sent: list[str]) -> list[list[str]]:
        # insert "really" after a copula ("was really great")
        for i, w in enumerate(sent[:-1]):
            if w in _COPULA_SWAPS and sent[i + 1] not in _INTENSIFIERS:
                return [sent[: i + 1] + ["really"] + sent[i + 1 :]]
        return []

    @staticmethod
    def _copula_shift(sent: list[str]) -> list[list[str]]:
        if any(w in _COPULA_SWAPS for w in sent):
            return [[_COPULA_SWAPS.get(w, w) for w in sent]]
        return []

    @staticmethod
    def _clause_reorder(sent: list[str]) -> list[list[str]]:
        # "A and B ." -> "B and A ." for coordinate clauses
        if "and" not in sent:
            return []
        i = sent.index("and")
        left, right = sent[:i], sent[i + 1 :]
        terminal = []
        if right and right[-1] in ".!?":
            terminal = [right[-1]]
            right = right[:-1]
        if not left or not right:
            return []
        return [right + ["and"] + left + terminal]

    def paraphrases(self, sentence: Sequence[str]) -> list[list[str]]:
        """Filtered paraphrase candidates for one sentence."""
        sent = list(sentence)
        if not sent:
            return []
        cache_key = tuple(sent)
        hit = self._sentence_cache.get(cache_key)
        if hit is not None:
            return [list(c) for c in hit]
        cfg = self.config
        # zlib.crc32 (not hash()) keeps the per-sentence stream stable across
        # interpreter runs regardless of PYTHONHASHSEED.
        sentence_key = zlib.crc32(" ".join(sent).encode()) % 100_000
        rng = np.random.default_rng(cfg.seed + sentence_key)
        raw: list[list[str]] = []
        raw.extend(self._synonym_variants(sent, rng))
        raw.extend(self._intensifier_removal(sent))
        raw.extend(self._intensifier_insertion(sent))
        raw.extend(self._copula_shift(sent))
        raw.extend(self._clause_reorder(sent))
        seen = {tuple(sent)}
        out: list[list[str]] = []
        for cand in raw:
            key = tuple(cand)
            if key in seen:
                continue
            seen.add(key)
            if wmd_similarity(sent, cand, self.vectors, exact=False) >= cfg.delta_s:
                out.append(cand)
            if len(out) >= cfg.k:
                break
        self._sentence_cache[cache_key] = tuple(tuple(c) for c in out)
        return out

    def neighbor_sets(self, tokens: Sequence[str]) -> tuple[list[list[str]], SentenceNeighborSets]:
        """Split ``tokens`` into sentences and paraphrase each.

        Returns (sentences, neighbor sets).
        """
        sentences = split_sentences(list(tokens))
        return sentences, SentenceNeighborSets([self.paraphrases(s) for s in sentences])
