"""Beam-search word attack — a stronger combinatorial baseline.

Objective-guided greedy ([19], `greedy_word.py`) keeps a single incumbent;
beam search keeps the ``beam_width`` best partial substitution sets and
expands each with every single-position substitution per round.  With
``beam_width = 1`` it reduces to the greedy baseline; wider beams trade
model queries for a better-explored search space.  Not part of the paper's
comparison but the standard next rung on the search-effort ladder, useful
as an upper-reference for how much success rate the cheap methods leave on
the table.

Composition: :class:`~repro.attacks.proposals.WordParaphraseSource` ×
:class:`~repro.attacks.search.BeamSearch`.
"""

from __future__ import annotations

from repro.attacks.engine import AttackEngine
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.proposals import WordParaphraseSource
from repro.attacks.search import BeamSearch
from repro.models.base import TextClassifier

__all__ = ["BeamSearchWordAttack"]


class BeamSearchWordAttack(AttackEngine):
    """Width-B beam search over word substitutions."""

    name = "beam-search"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
        beam_width: int = 3,
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        source = WordParaphraseSource(paraphraser, word_budget_ratio)
        search = BeamSearch(tau, beam_width=beam_width)
        super().__init__(
            model, source, search, use_cache=use_cache, cache_max_entries=cache_max_entries
        )

    @property
    def paraphraser(self):
        return self.source.paraphraser

    @property
    def word_budget_ratio(self) -> float:
        return self.source.word_budget_ratio

    @property
    def tau(self) -> float:
        return self.search.tau

    @property
    def beam_width(self) -> int:
        return self.search.beam_width
