"""Beam-search word attack — a stronger combinatorial baseline.

Objective-guided greedy ([19], `greedy_word.py`) keeps a single incumbent;
beam search keeps the ``beam_width`` best partial substitution sets and
expands each with every single-position substitution per round.  With
``beam_width = 1`` it reduces to the greedy baseline; wider beams trade
model queries for a better-explored search space.  Not part of the paper's
comparison but the standard next rung on the search-effort ladder, useful
as an upper-reference for how much success rate the cheap methods leave on
the table.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.paraphrase import WordParaphraser
from repro.attacks.transformations import apply_word_substitutions
from repro.models.base import TextClassifier

__all__ = ["BeamSearchWordAttack"]


class BeamSearchWordAttack(Attack):
    """Width-B beam search over word substitutions."""

    name = "beam-search"

    def __init__(
        self,
        model: TextClassifier,
        paraphraser: WordParaphraser,
        word_budget_ratio: float = 0.2,
        tau: float = 0.7,
        beam_width: int = 3,
        use_cache: bool = True,
        cache_max_entries: int | None = None,
    ) -> None:
        super().__init__(
            model, use_cache=use_cache, cache_max_entries=cache_max_entries
        )
        if not 0.0 <= word_budget_ratio <= 1.0:
            raise ValueError("word_budget_ratio must be in [0, 1]")
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.paraphraser = paraphraser
        self.word_budget_ratio = word_budget_ratio
        self.tau = tau
        self.beam_width = beam_width

    def _run(self, doc: list[str], target_label: int) -> tuple[list[str], list[str]]:
        with self._span("candidate-gen"):
            neighbor_sets = self.paraphraser.neighbor_sets(doc)
        budget = int(self.word_budget_ratio * len(doc))
        base_score = self._score(doc, target_label)
        # beam entries: (score, substitutions dict)
        beam: list[tuple[float, dict[int, str]]] = [(base_score, {})]
        best_score, best_subs = base_score, {}
        for round_index in range(budget):
            if best_score >= self.tau:
                break
            candidates: list[dict[int, str]] = []
            seen: set[tuple] = set()
            for _, subs in beam:
                for j in neighbor_sets.attackable_positions:
                    if j in subs:
                        continue
                    for word in neighbor_sets[j]:
                        if word == doc[j]:
                            continue
                        extended = {**subs, j: word}
                        key = tuple(sorted(extended.items()))
                        if key not in seen:
                            seen.add(key)
                            candidates.append(extended)
            if not candidates:
                break
            docs = [apply_word_substitutions(doc, subs) for subs in candidates]
            with self._span("greedy-select"):
                scores = self._score_batch(docs, target_label)
                ranked = sorted(zip(scores, candidates), key=lambda sc: -sc[0])
            beam = [(s, c) for s, c in ranked[: self.beam_width]]
            if beam[0][0] <= best_score + 1e-12:
                break
            previous_best = best_score
            best_score, best_subs = beam[0]
            self._trace_event(
                "greedy_iteration",
                stage="word",
                iteration=round_index,
                positions=sorted(best_subs),
                n_candidates=len(candidates),
                best_objective=best_score,
                marginal_gain=best_score - previous_best,
                rescans=0,
            )
        adversarial = apply_word_substitutions(doc, best_subs)
        return adversarial, ["word"] * len(best_subs)
