"""repro — reproduction of "Discrete Adversarial Attacks and Submodular
Optimization with Applications to Text Classification" (Lei et al., MLSys 2019).

Subpackages
-----------
``repro.nn``
    NumPy autograd + neural-network substrate (replaces PyTorch).
``repro.text``
    Tokenization, vocabulary, n-gram language model, embeddings, WMD.
``repro.data``
    Synthetic corpora (news / spam / sentiment) and dataset containers.
``repro.models``
    WCNN and LSTM classifiers plus the simplified theoretical variants.
``repro.submodular``
    Set-function framework, greedy maximizers, submodularity checks,
    NP-hardness reduction, modular (gradient) relaxation.
``repro.attacks``
    The paper's Algorithms 1-3 plus baseline attacks.
``repro.defense``
    Adversarial training (Table 5).
``repro.eval``
    Metrics, simulated human evaluation, report formatting.
``repro.experiments``
    One driver per paper table/figure.
"""

__version__ = "1.0.0"
