"""Ablation: exact WMD (transport LP) vs relaxed lower bound (RWMD).

The sentence filter uses the relaxed bound for speed; this bench measures
the speedup and checks the bound's tightness on corpus sentence pairs.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.text.sentence import split_sentences
from repro.text.wmd import relaxed_wmd, wmd


def test_exact_vs_relaxed_wmd(ctx, benchmark):
    vectors = ctx.vectors("yelp")
    docs = ctx.dataset("yelp").documents("test")[:12]
    sentences = [s for d in docs for s in split_sentences(d)][:40]
    pairs = [(sentences[i], sentences[i + 1]) for i in range(0, len(sentences) - 1, 2)]

    def run():
        t0 = time.perf_counter()
        exact = [wmd(a, b, vectors) for a, b in pairs]
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        relaxed = [relaxed_wmd(a, b, vectors) for a, b in pairs]
        t_relaxed = time.perf_counter() - t0
        return exact, relaxed, t_exact, t_relaxed

    exact, relaxed, t_exact, t_relaxed = run_once(benchmark, run)
    finite = [(e, r) for e, r in zip(exact, relaxed) if np.isfinite(e)]
    tightness = [r / e for e, r in finite if e > 1e-9]
    print("\n=== Ablation: exact vs relaxed WMD ===")
    print(f"  pairs={len(pairs)}  exact={t_exact:.4f}s  relaxed={t_relaxed:.4f}s "
          f"speedup={t_exact / max(t_relaxed, 1e-9):.1f}x")
    print(f"  mean tightness (RWMD/WMD) = {np.mean(tightness):.3f}")
    for e, r in finite:
        assert r <= e + 1e-9  # lower bound
    assert t_relaxed < t_exact  # and faster
    assert np.mean(tightness) > 0.6  # reasonably tight, as in Kusner et al.
