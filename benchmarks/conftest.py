"""Shared benchmark fixtures.

One :class:`ExperimentContext` is built per session with the canonical
reduced-scale settings; trained victims are cached on disk under
``.cache/`` so repeated benchmark runs skip training.
"""

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
