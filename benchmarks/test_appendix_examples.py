"""Benchmark: regenerate the appendix-C method-comparison examples."""

from benchmarks.conftest import run_once
from repro.experiments import appendix_examples


def test_appendix_method_comparison(ctx, benchmark):
    comparisons = run_once(benchmark, lambda: appendix_examples.run(ctx))
    print("\n=== Appendix C: per-method adversarial examples ===")
    print(appendix_examples.render(comparisons))
    assert len(comparisons) == 3
    for comp in comparisons:
        assert set(comp.results) == {"joint", "objective-greedy", "gradient"}
        for result in comp.results.values():
            # no method may decrease the target probability (gradient may
            # be a no-op, never worse than original on its final output)
            assert result.adversarial_prob >= 0.0
