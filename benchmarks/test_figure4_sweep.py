"""Benchmark: regenerate paper Figure 4 (success rate vs λ_s per λ_w, LSTM).

Shape assertions: success rate rises with the sentence-paraphrase ratio at
every word budget, and sentence paraphrasing gives its largest boost at
small word budgets (the paper's headline observation).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure4


def test_figure4_sentence_word_sweep(ctx, benchmark):
    points = run_once(benchmark, lambda: figure4.run(ctx, max_examples=12))
    print("\n=== Figure 4: success rate vs lam_s (LSTM) ===")
    print(figure4.render(points))

    for dataset in ("news", "trec07p", "yelp"):
        curves = figure4.series(points, dataset)
        # each λ_w curve is non-decreasing in λ_s (up to small-sample noise)
        for lw, curve in curves.items():
            srs = [sr for _, sr in curve]
            assert srs[-1] >= srs[0] - 0.15, (dataset, lw, curve)

    # aggregated across datasets: λ_s = 60% strictly helps at λ_w ≤ 10%
    def mean_sr(ls, lw):
        vals = [p.success_rate for p in points if p.sentence_budget == ls and p.word_budget == lw]
        return float(np.mean(vals))

    assert mean_sr(0.6, 0.0) > mean_sr(0.0, 0.0)
    assert mean_sr(0.6, 0.1) > mean_sr(0.0, 0.1)
