"""Benchmark: regenerate paper Table 4 (simulated human evaluation).

Shape assertions: the simulated annotators label adversarial texts about
as accurately as originals, and rate their naturalness similarly — the
paper's conclusion that WMD/LM-filtered paraphrasing preserves semantics
and fluency.
"""

from benchmarks.conftest import run_once
from repro.experiments import table4


def test_table4_human_evaluation(ctx, benchmark):
    rows = run_once(benchmark, lambda: table4.run(ctx, n_texts=30))
    print("\n=== Table 4: simulated human evaluation ===")
    print(table4.render(rows))
    for r in rows:
        # Task I: labels stay recoverable from the adversarial text
        assert r.adversarial.label_accuracy >= r.original.label_accuracy - 0.25, r
        # Task II: naturalness within half a point of the original
        assert abs(r.adversarial.naturalness_mean - r.original.naturalness_mean) <= 0.5, r
