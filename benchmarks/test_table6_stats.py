"""Benchmark: regenerate paper Table 6 (dataset statistics)."""

from benchmarks.conftest import run_once
from repro.experiments import table6


def test_table6_dataset_statistics(ctx, benchmark):
    rows = run_once(benchmark, lambda: table6.run(ctx))
    print("\n=== Table 6: dataset statistics ===")
    print(table6.render(rows))
    assert len(rows) == 3
    for r in rows:
        # balanced binary corpora, in the generator's configured size
        assert abs(r["positive_fraction"] - 0.5) < 0.05
        assert r["n_train"] > 0 and r["n_test"] > 0
