"""Benchmark: regenerate paper Table 3 (optimization-method comparison).

Shape assertions (aggregated over datasets):
- the gradient method [18] issues by far the fewest model queries but has
  the lowest success rate at λ_w = 20%;
- gradient-guided greedy (Alg. 3) is competitive with objective-guided
  greedy [19] on success rate;
- success rates increase with the word budget.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import table3


def test_table3_optimization_methods(ctx, benchmark):
    rows = run_once(benchmark, lambda: table3.run(ctx, max_examples=40))
    print("\n=== Table 3: word-level optimization methods (WCNN) ===")
    print(table3.render(rows))

    def mean_sr(method, budget):
        vals = [r.success_rate for r in rows if r.method == method and r.word_budget == budget]
        return float(np.mean(vals))

    def mean_queries(method, budget):
        vals = [r.mean_queries for r in rows if r.method == method and r.word_budget == budget]
        return float(np.mean(vals))

    # gradient method: cheapest, weakest (paper Sec. 6.4)
    assert mean_queries("gradient", 0.2) < mean_queries("objective-greedy", 0.2)
    assert mean_queries("gradient", 0.2) < mean_queries("gradient-guided", 0.2)
    assert mean_sr("gradient", 0.2) <= mean_sr("objective-greedy", 0.2)
    assert mean_sr("gradient", 0.2) <= mean_sr("gradient-guided", 0.2) + 0.02

    # Alg. 3 is competitive with objective-guided greedy
    assert mean_sr("gradient-guided", 0.2) >= mean_sr("objective-greedy", 0.2) - 0.1

    # larger budgets help every method
    for method in table3.METHODS:
        assert mean_sr(method, 0.2) >= mean_sr(method, 0.05) - 0.02
