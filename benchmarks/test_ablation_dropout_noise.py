"""Ablation: the paper's inference-dropout mechanism (Sec. 6.4).

The paper runs its WCNN with 5% inference-time dropout and argues that the
one-word gains of objective-guided greedy [19] are "not significant enough
to be considered as true gains or the noise from the dropout", while
Alg. 3's five-word moves exceed the noise floor.

This bench reproduces the mechanism: under inference noise, one-word
greedy degrades much more than the multi-word gradient-guided method.
(Success is always judged with deterministic inference.)
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import GradientGuidedGreedyAttack, ObjectiveGreedyWordAttack
from repro.eval.metrics import evaluate_attack


def test_dropout_noise_mechanism(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("trec07p", "yelp"):
            model = ctx.model(dataset, "wcnn")
            test = ctx.dataset(dataset).test
            wp = ctx.word_paraphraser(dataset)
            for noise in (0.0, 0.02):
                model.inference_dropout = noise
                try:
                    for name, attack in (
                        ("objective-greedy", ObjectiveGreedyWordAttack(model, wp, 0.2)),
                        ("gradient-guided", GradientGuidedGreedyAttack(model, wp, 0.2)),
                    ):
                        ev = evaluate_attack(model, attack, test, max_examples=30)
                        rows.append((dataset, noise, name, ev.success_rate))
                finally:
                    model.inference_dropout = 0.0
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: inference-dropout noise (paper Sec. 6.4 mechanism) ===")
    for dataset, noise, name, sr in rows:
        print(f"  {dataset:8s} dropout={noise:4.2f} {name:17s} SR={sr:6.1%}")

    def degradation(name):
        clean = np.mean([sr for _, n, m, sr in rows if m == name and n == 0.0])
        noisy = np.mean([sr for _, n, m, sr in rows if m == name and n > 0.0])
        return float(clean - noisy)

    # one-word greedy loses more success rate to the noise than the
    # multi-word gradient-guided method
    assert degradation("objective-greedy") >= degradation("gradient-guided") - 0.02
