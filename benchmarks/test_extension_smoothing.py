"""Extension study: randomized synonym smoothing as an inference defense.

Compares the undefended WCNN against the smoothed wrapper under the same
score-based attack (objective-guided greedy, the only applicable attack —
smoothing blocks gradients): clean accuracy cost vs robustness gain.
"""

from benchmarks.conftest import run_once
from repro.attacks import ObjectiveGreedyWordAttack
from repro.defense import SmoothedClassifier
from repro.eval.metrics import evaluate_attack


def test_smoothing_defense(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("trec07p", "yelp"):
            model = ctx.model(dataset, "wcnn")
            lexicon = ctx.lexicon(dataset)
            wp = ctx.word_paraphraser(dataset)
            test = ctx.dataset(dataset).test
            smoothed = SmoothedClassifier(model, lexicon, n_samples=9, substitution_prob=0.3)
            for name, victim in (("undefended", model), ("smoothed", smoothed)):
                attack = ObjectiveGreedyWordAttack(victim, wp, 0.2, tau=ctx.settings.tau)
                ev = evaluate_attack(victim, attack, test, max_examples=25)
                rows.append((dataset, name, ev.clean_accuracy, ev.success_rate))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Extension: randomized synonym smoothing ===")
    for dataset, name, clean, sr in rows:
        print(f"  {dataset:8s} {name:11s} clean={clean:6.1%}  attack SR={sr:6.1%}")

    by = {(d, n): (c, s) for d, n, c, s in rows}
    for dataset in ("trec07p", "yelp"):
        clean_u, sr_u = by[(dataset, "undefended")]
        clean_s, sr_s = by[(dataset, "smoothed")]
        assert clean_s >= clean_u - 0.15  # modest clean-accuracy cost
        assert sr_s <= sr_u + 0.05  # and no free lunch for the attacker
