"""Benchmark: regenerate paper Figure 1 (adversarial example gallery)."""

from benchmarks.conftest import run_once
from repro.experiments import examples_gallery


def test_figure1_adversarial_gallery(ctx, benchmark):
    entries = run_once(benchmark, lambda: examples_gallery.run(ctx, per_dataset=2))
    print("\n=== Figure 1: generated adversarial examples ===")
    for entry in entries:
        print(examples_gallery.render_entry(entry))
        print()
    assert entries, "expected at least one successful attack to display"
    for entry in entries:
        r = entry.result
        assert r.success
        assert r.adversarial != r.original
