"""Ablation: Algorithm 3's word-selection rule.

Compares the Gauss-Southwell family on the same victims: ``modular``
(first-order realizable gain, our default), ``gs_norm`` (raw gradient norm,
Alg. 3 step 4 as written) and ``random`` (the no-gradient control the
Gauss-Southwell literature compares against).

Shape: gradient-informed selection beats random; the modular refinement is
at least as good as the raw norm.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import GradientGuidedGreedyAttack
from repro.eval.metrics import evaluate_attack


def test_selection_rule_ablation(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("news", "trec07p", "yelp"):
            model = ctx.model(dataset, "wcnn")
            test = ctx.dataset(dataset).test
            wp = ctx.word_paraphraser(dataset)
            for selection in ("modular", "gs_norm", "random"):
                attack = GradientGuidedGreedyAttack(
                    model, wp, word_budget_ratio=0.2, selection=selection
                )
                ev = evaluate_attack(model, attack, test, max_examples=30)
                rows.append((dataset, selection, ev.success_rate, ev.mean_queries))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: Alg. 3 selection rule ===")
    for dataset, selection, sr, q in rows:
        print(f"  {dataset:8s} {selection:8s} SR={sr:6.1%} queries/doc={q:.0f}")

    def mean_sr(selection):
        return float(np.mean([sr for _, s, sr, _ in rows if s == selection]))

    assert mean_sr("modular") >= mean_sr("random") - 0.02
    assert mean_sr("modular") >= mean_sr("gs_norm") - 0.05
