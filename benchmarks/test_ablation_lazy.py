"""Ablation: lazy (Minoux) greedy vs naive greedy on attack set functions.

For submodular objectives the two return identical solutions; lazy greedy
saves underlying evaluations.  Run on Theorem-1 WCNN attack instances.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.models.theory_models import SimplifiedWCNN
from repro.submodular import (
    greedy_maximize,
    lazy_greedy_maximize,
    make_output_increasing_candidates_wcnn,
    wcnn_attack_set_function,
)


def test_lazy_vs_naive_greedy(benchmark):
    def run():
        rows = []
        for seed in range(6):
            model = SimplifiedWCNN.random_instance(num_filters=4, dim=3, seed=seed)
            v = np.random.default_rng(seed + 50).normal(size=(10, 3))
            cands = make_output_increasing_candidates_wcnn(model, v, k=2, seed=seed)
            f = wcnn_attack_set_function(model, v, cands)
            naive = greedy_maximize(f, 4)
            lazy = lazy_greedy_maximize(f, 4)
            rows.append((seed, naive.value, lazy.value, naive.n_evaluations, lazy.n_evaluations))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: lazy vs naive greedy (Thm-1 instances, n=10, budget=4) ===")
    for seed, nv, lv, ne, le in rows:
        print(f"  seed={seed}: value naive={nv:.4f} lazy={lv:.4f} | evals naive={ne} lazy={le}")
        np.testing.assert_allclose(nv, lv, rtol=1e-12)
        assert le <= ne
    total_saved = sum(r[3] - r[4] for r in rows)
    assert total_saved > 0, "lazy greedy should save evaluations overall"
