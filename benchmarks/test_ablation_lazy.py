"""Ablation: lazy (Minoux/CELF) greedy vs naive greedy.

Two levels:

1. On Theorem-1 WCNN attack set functions, where submodularity holds
   exactly: identical solutions, fewer underlying evaluations.
2. On the real objective-greedy word attack (``strategy="lazy"``), where
   submodularity only holds empirically: comparable attack quality, far
   fewer paid model forwards.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import ObjectiveGreedyWordAttack
from repro.models.theory_models import SimplifiedWCNN
from repro.submodular import (
    greedy_maximize,
    lazy_greedy_maximize,
    make_output_increasing_candidates_wcnn,
    wcnn_attack_set_function,
)


def test_lazy_vs_naive_greedy(benchmark):
    def run():
        rows = []
        for seed in range(6):
            model = SimplifiedWCNN.random_instance(num_filters=4, dim=3, seed=seed)
            v = np.random.default_rng(seed + 50).normal(size=(10, 3))
            cands = make_output_increasing_candidates_wcnn(model, v, k=2, seed=seed)
            f = wcnn_attack_set_function(model, v, cands)
            naive = greedy_maximize(f, 4)
            lazy = lazy_greedy_maximize(f, 4)
            rows.append((seed, naive.value, lazy.value, naive.n_evaluations, lazy.n_evaluations))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: lazy vs naive greedy (Thm-1 instances, n=10, budget=4) ===")
    for seed, nv, lv, ne, le in rows:
        print(f"  seed={seed}: value naive={nv:.4f} lazy={lv:.4f} | evals naive={ne} lazy={le}")
        np.testing.assert_allclose(nv, lv, rtol=1e-12)
        assert le <= ne
    total_saved = sum(r[3] - r[4] for r in rows)
    assert total_saved > 0, "lazy greedy should save evaluations overall"


def test_lazy_strategy_on_word_attack(benchmark, ctx):
    def run():
        model = ctx.model("news", "wcnn")
        docs = ctx.dataset("news").documents("test")[:10]
        targets = [1 - int(label) for label in model.predict(docs)]
        rows = []
        for strategy in ("scan", "lazy"):
            attack = ObjectiveGreedyWordAttack(
                model, ctx.word_paraphraser("news"), 0.2, strategy=strategy
            )
            results = [attack.attack(d, t) for d, t in zip(docs, targets)]
            rows.append(
                (
                    strategy,
                    sum(r.n_queries for r in results),
                    float(np.mean([r.adversarial_prob for r in results])),
                    sum(r.success for r in results),
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: scan vs lazy objective-greedy word attack (news/wcnn) ===")
    for strategy, queries, adv_prob, wins in rows:
        print(f"  {strategy}: forwards={queries} mean_adv_prob={adv_prob:.3f} wins={wins}")
    (_, q_scan, _, wins_scan), (_, q_lazy, _, wins_lazy) = rows
    assert q_lazy < q_scan, "lazy strategy should pay fewer model forwards"
    assert wins_lazy >= wins_scan - 1, "lazy strategy should not cost attack success"
