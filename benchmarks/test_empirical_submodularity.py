"""Extension study: how submodular are *real trained* classifiers?

Theorems 1-2 prove submodularity for simplified architectures only; the
paper argues it is a natural assumption in general.  This bench measures
the diminishing-returns violation rate of the exact Problem-1 set function
for the trained WCNN and LSTM on real test documents, plus the empirical
greedy/OPT ratio (which the (1 − 1/e) bound predicts under submodularity).

Expected shape: low violation rates with small relative gaps, and
greedy/OPT ratios far above 1 − 1/e — greedy is near-optimal in practice
even where exact submodularity fails.
"""

import itertools

import numpy as np

from benchmarks.conftest import run_once
from repro.submodular import (
    CachedSetFunction,
    classifier_attack_set_function,
    greedy_maximize,
    submodularity_violation_stats,
)


def test_trained_network_submodularity(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("trec07p", "yelp"):
            for arch in ("wcnn", "lstm"):
                model = ctx.model(dataset, arch)
                wp = ctx.word_paraphraser(dataset)
                docs = ctx.dataset(dataset).documents("test")
                labels = ctx.dataset(dataset).labels("test")
                preds = model.predict(docs)
                examined = 0
                for i in range(len(docs)):
                    if examined >= 2:
                        break
                    if preds[i] != labels[i]:
                        continue
                    ns = wp.neighbor_sets(docs[i])
                    if len(ns.attackable_positions) < 5:
                        continue
                    examined += 1
                    inner, positions = classifier_attack_set_function(
                        model,
                        docs[i],
                        ns,
                        1 - int(labels[i]),
                        max_positions=5,
                        max_candidates_per_position=1,
                    )
                    # the ground set is tiny (2^5 subsets): cache exhaustively
                    f = CachedSetFunction(inner)
                    stats = submodularity_violation_stats(f, trials=80, seed=i)
                    greedy = greedy_maximize(f, 3)
                    n = f.ground_set_size
                    opt = max(
                        f.evaluate(c)
                        for r in range(4)
                        for c in itertools.combinations(range(n), r)
                    )
                    base = f.evaluate(())
                    ratio = (greedy.value - base) / max(opt - base, 1e-12)
                    rows.append((dataset, arch, i, stats, ratio))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Extension: empirical submodularity of trained classifiers ===")
    for dataset, arch, i, stats, ratio in rows:
        print(
            f"  {dataset:8s} {arch:5s} doc={i:3d}: violation rate={stats.violation_rate:6.1%} "
            f"relative gap={stats.relative_gap:6.3f} greedy/OPT={ratio:.3f}"
        )
    assert rows
    ratios = [r for *_, r in rows]
    one_minus_inv_e = 1 - 1 / np.e
    # greedy achieves (well above) the submodular guarantee in practice
    assert np.mean(ratios) >= one_minus_inv_e
    # approximate submodularity: diminishing returns holds on a clear
    # majority-to-large fraction of triples (exact submodularity does fail
    # on real networks, LSTM especially — that is the finding)
    rates = [s.violation_rate for *_, s, _ in rows]
    assert np.mean(rates) <= 0.8
