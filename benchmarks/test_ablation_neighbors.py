"""Ablation: neighbor-set size k (Alg. 1's paraphrase cap).

The paper fixes k = 15 candidates per word.  This bench sweeps k and
measures attack success: richer candidate sets give the search more
directions, with diminishing returns once every useful synonym is
included (our clusters hold ≤ 6 synonyms, so k beyond that is free).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import ObjectiveGreedyWordAttack, ParaphraseConfig, WordParaphraser
from repro.eval.metrics import evaluate_attack


def test_neighbor_set_size_ablation(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("trec07p", "yelp"):
            model = ctx.model(dataset, "wcnn")
            test = ctx.dataset(dataset).test
            base_cfg = ctx.paraphrase_config(dataset)
            for k in (1, 2, 4, 15):
                cfg = ParaphraseConfig(
                    k=k,
                    delta_w=base_cfg.delta_w,
                    delta_s=base_cfg.delta_s,
                    delta_lm=base_cfg.delta_lm,
                    seed=base_cfg.seed,
                )
                wp = WordParaphraser(
                    ctx.lexicon(dataset),
                    ctx.vectors(dataset),
                    lm=ctx.language_model(dataset),
                    config=cfg,
                )
                attack = ObjectiveGreedyWordAttack(model, wp, 0.2, tau=ctx.settings.tau)
                ev = evaluate_attack(model, attack, test, max_examples=25)
                rows.append((dataset, k, ev.success_rate, ev.mean_queries))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: neighbor-set size k ===")
    for dataset, k, sr, q in rows:
        print(f"  {dataset:8s} k={k:2d}  SR={sr:6.1%}  queries/doc={q:.0f}")

    def mean_sr(k):
        return float(np.mean([sr for _, kk, sr, _ in rows if kk == k]))

    # more candidates never hurt much, and k=1 is clearly weaker than k=15
    assert mean_sr(15) >= mean_sr(1)
    assert mean_sr(15) >= mean_sr(4) - 0.05
