"""Benchmark: regenerate paper Table 5 (adversarial training).

Shape assertions: after merging 20% adversarial examples into training,
adversarial accuracy improves on average and clean test accuracy is not
hurt — the paper's Sec. 6.6 finding.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import table5


def test_table5_adversarial_training(ctx, benchmark):
    rows = run_once(
        benchmark, lambda: table5.run(ctx, models=("wcnn",), max_eval_examples=40)
    )
    print("\n=== Table 5: adversarial training (WCNN) ===")
    print(table5.render(rows))
    adv_gain = np.mean([r.result.adv_after - r.result.adv_before for r in rows])
    test_change = np.mean([r.result.test_after - r.result.test_before for r in rows])
    assert adv_gain >= 0.0, f"adversarial training should help on average, got {adv_gain}"
    assert test_change >= -0.05, f"clean accuracy should not collapse, got {test_change}"
