"""Ablation: the search-effort ladder.

Orders the optimizers by search effort — random, one-shot gradient,
gradient-guided greedy (Alg. 3), objective-guided greedy [19], width-3
beam search — and measures success rate vs model queries on one victim.
Quantifies how much attack success each extra rung of search effort buys
(and what the paper's efficient middle rungs leave on the table).
"""


from benchmarks.conftest import run_once
from repro.attacks import (
    BeamSearchWordAttack,
    GradientGuidedGreedyAttack,
    GradientWordAttack,
    ObjectiveGreedyWordAttack,
    RandomWordAttack,
)
from repro.eval.metrics import evaluate_attack

_LADDER = ("random", "gradient", "gradient-guided", "objective-greedy", "beam-3")


def test_search_effort_ladder(ctx, benchmark):
    def run():
        dataset = "trec07p"
        model = ctx.model(dataset, "wcnn")
        test = ctx.dataset(dataset).test
        wp = ctx.word_paraphraser(dataset)
        tau = ctx.settings.tau
        attacks = {
            "random": RandomWordAttack(model, wp, 0.2),
            "gradient": GradientWordAttack(model, wp, 0.2),
            "gradient-guided": GradientGuidedGreedyAttack(model, wp, 0.2, tau=tau),
            "objective-greedy": ObjectiveGreedyWordAttack(model, wp, 0.2, tau=tau),
            "beam-3": BeamSearchWordAttack(model, wp, 0.2, tau=tau, beam_width=3),
        }
        rows = []
        for name in _LADDER:
            ev = evaluate_attack(model, attacks[name], test, max_examples=25)
            rows.append((name, ev.success_rate, ev.mean_queries))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: search-effort ladder (trec07p, WCNN, lam_w=20%) ===")
    for name, sr, q in rows:
        print(f"  {name:16s} SR={sr:6.1%}  queries/doc={q:.0f}")

    by = {name: sr for name, sr, _ in rows}
    # success rate is (weakly) monotone up the ladder's anchor points
    assert by["random"] <= by["objective-greedy"] + 0.05
    assert by["gradient"] <= by["beam-3"] + 0.05
    assert by["beam-3"] >= by["objective-greedy"] - 0.05
