"""Query-efficiency frontier benchmark → ``BENCH_frontier.json``.

Runs the :mod:`repro.experiments.frontier` sweep over a representative
slice of the registry — the paper's greedy/lazy attacks next to the
PR's frontier baselines (Gumbel sampling, particle swarm, saliency
rank-then-replace) — under hard ``max_queries`` budgets, renders the
markdown leaderboard, and records every ``(attack, budget)`` cell at the
repo root so successive PRs keep a query-efficiency trajectory.

Acceptance bars:

* every cell respects the exact budget (``mean_queries <= budget``;
  the driver itself asserts the per-document contract);
* for each attack, success at the largest budget is no worse than at
  the smallest (more queries never hurt: trajectories share a bitwise
  prefix, and strategies only ever apply improving moves);
* the leaderboard renders with one ``success@b`` column per budget.
"""

from pathlib import Path

from benchmarks.conftest import run_once
from repro.eval.perf import write_bench_json
from repro.experiments import frontier

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_frontier.json"

ATTACK_SLICE = (
    "greedy_word",
    "lazy_greedy_word",
    "random_word",
    "gumbel_word",
    "pso_word",
    "heuristic_saliency",
)
BUDGETS = (25, 50, 100, 200)
N_DOCS = 8


def test_frontier_leaderboard(benchmark, ctx):
    def run():
        return frontier.run(
            ctx, max_examples=N_DOCS, budgets=BUDGETS, attacks=ATTACK_SLICE
        )

    points = run_once(benchmark, run)
    print("\n=== Query-efficiency frontier (yelp/wcnn, n=%d) ===" % N_DOCS)
    print(frontier.render(points))
    leaderboard = frontier.leaderboard(points)
    print()
    print(leaderboard)

    assert len(points) == len(ATTACK_SLICE) * len(BUDGETS)
    for p in points:
        assert p.mean_queries <= p.max_queries
        assert p.n_examples == N_DOCS

    series = frontier.curves(points)
    for name, curve in series.items():
        assert [b for b, _ in curve] == sorted(BUDGETS)
        assert curve[-1][1] >= curve[0][1], (
            f"{name}: success dropped from {curve[0]} to {curve[-1]}"
        )

    assert "| rank | attack |" in leaderboard
    for budget in BUDGETS:
        assert f"success@{budget}" in leaderboard

    metrics = {}
    for p in points:
        stem = f"{p.attack}_q{p.max_queries}"
        metrics[f"{stem}_success_rate"] = (p.success_rate, "fraction")
        metrics[f"{stem}_mean_queries"] = (p.mean_queries, "queries")
    payload = write_bench_json(BENCH_PATH, metrics)
    print(f"\n[wrote {BENCH_PATH.name} with {len(payload)} metrics]")
