"""Ablation: joint multi-word moves (N per iteration) in Algorithm 3.

The paper replaces N = 5 words per iteration "to take into consideration
the joint effect of multiple words replacements".  This bench sweeps N and
reports success rate and query cost; N > 1 should cut queries per document
relative to N = 1 (which degenerates to gradient-preselected one-word
greedy) without losing success rate.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import GradientGuidedGreedyAttack
from repro.eval.metrics import evaluate_attack


def test_words_per_iteration_ablation(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("trec07p", "yelp"):
            model = ctx.model(dataset, "wcnn")
            test = ctx.dataset(dataset).test
            wp = ctx.word_paraphraser(dataset)
            for n in (1, 3, 5):
                attack = GradientGuidedGreedyAttack(
                    model, wp, word_budget_ratio=0.2, words_per_iteration=n
                )
                ev = evaluate_attack(model, attack, test, max_examples=30)
                rows.append((dataset, n, ev.success_rate, ev.mean_queries))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: words per iteration (Alg. 3) ===")
    for dataset, n, sr, q in rows:
        print(f"  {dataset:8s} N={n}  SR={sr:6.1%} queries/doc={q:.0f}")

    def agg(n, col):
        return float(np.mean([r[col] for r in rows if r[1] == n]))

    # multi-word moves keep success within noise of one-word moves
    assert agg(5, 2) >= agg(1, 2) - 0.1
