"""Extension study: transferability of adversarial text across models.

The paper generates attacks white-box per victim; a standard follow-up
question is whether examples crafted against one architecture fool
another.  For each dataset we craft joint-attack adversaries against the
WCNN and measure how many also flip the LSTM (and vice versa).

Expected shape: transfer rates are well above the ~0 base rate (both
models lean on the same under-trained rare synonyms) but clearly below
the white-box success rate.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.metrics import evaluate_attack


def test_cross_architecture_transfer(ctx, benchmark):
    def run():
        rows = []
        for dataset in ("trec07p", "yelp"):
            models = {a: ctx.model(dataset, a) for a in ("wcnn", "lstm")}
            test = ctx.dataset(dataset).test
            for source, target in (("wcnn", "lstm"), ("lstm", "wcnn")):
                attack = ctx.make_attack("joint", models[source], dataset)
                ev = evaluate_attack(models[source], attack, test, max_examples=30)
                wins = [r for r in ev.results if r.success]
                if not wins:
                    rows.append((dataset, source, target, ev.success_rate, 0.0, 0))
                    continue
                adv_docs = [r.adversarial for r in wins]
                targets = np.array([r.target_label for r in wins])
                preds = models[target].predict(adv_docs)
                transfer = float((preds == targets).mean())
                rows.append((dataset, source, target, ev.success_rate, transfer, len(wins)))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Extension: cross-architecture transferability ===")
    for dataset, source, target, white_box, transfer, n in rows:
        print(
            f"  {dataset:8s} {source}->{target}: white-box SR={white_box:6.1%}  "
            f"transfer rate={transfer:6.1%}  (n={n})"
        )
    # transfer happens but is weaker than white-box
    transfers = [t for *_, t, n in rows if n > 0]
    white = [w for _, _, _, w, _, n in rows if n > 0]
    assert transfers, "expected at least some successful source attacks"
    assert np.mean(transfers) > 0.0
    assert np.mean(transfers) <= np.mean(white) + 0.1
