"""Benchmark: Table 1 generality — the framework on the URL domain.

Trains a character-level phishing detector and attacks it with the same
objective-guided greedy machinery used for text, with homoglyph character
substitutions as the transformation family.  The paper's claim: the
discrete-attack formulation is not text-specific.
"""

from benchmarks.conftest import run_once
from repro.attacks import ObjectiveGreedyWordAttack
from repro.data.urls import UrlCharCandidates, UrlCorpusConfig, make_url_corpus
from repro.eval.metrics import evaluate_attack
from repro.models import WCNN, TrainConfig, fit
from repro.text import Vocabulary


def test_url_domain_end_to_end(benchmark):
    def run():
        dataset = make_url_corpus(UrlCorpusConfig(n_train=400, n_test=120, seed=0))
        vocab = Vocabulary.build(dataset.documents("train"))
        model = WCNN(vocab, max_len=48, embedding_dim=12, num_filters=32, seed=0)
        fit(model, dataset.train, TrainConfig(epochs=8, seed=0))
        attack = ObjectiveGreedyWordAttack(
            model, UrlCharCandidates(), word_budget_ratio=0.3, tau=0.7
        )
        malicious = [ex for ex in dataset.test if ex.label == 1]
        ev = evaluate_attack(model, attack, malicious, max_examples=30)
        return ev

    ev = run_once(benchmark, run)
    print("\n=== Table 1 generality: malicious-URL domain ===")
    print(f"  detector accuracy on malicious URLs: {ev.clean_accuracy:.1%}")
    print(f"  evasion success rate (homoglyph substitutions): {ev.success_rate:.1%}")
    print(f"  mean characters changed: {ev.mean_word_changes:.1f}")
    assert ev.clean_accuracy >= 0.9
    assert ev.success_rate >= 0.2
