"""Benchmark: regenerate paper Table 2 (clean vs adversarial accuracy).

Shape assertions: adversarial accuracy is far below clean accuracy for
both the joint attack (ours, λ_w = 20%) and the greedy baseline
(λ_w = 50%), across all dataset × model cells.
"""

from benchmarks.conftest import run_once
from repro.experiments import table2


def test_table2_clean_vs_adversarial(ctx, benchmark):
    rows = run_once(benchmark, lambda: table2.run(ctx, max_examples=40))
    print("\n=== Table 2: clean vs adversarial accuracy ===")
    print(table2.render(rows))
    assert len(rows) == 6  # 3 datasets x 2 models
    for r in rows:
        # clean accuracy in the paper's 93-100% band
        assert r.clean_accuracy >= 0.9, r
        # the attacks do real damage
        assert r.adv_ours <= r.clean_accuracy - 0.2, r
        assert r.adv_greedy_baseline <= r.clean_accuracy - 0.2, r
    # aggregate shape: ours with a 20% budget is at least comparable to the
    # greedy baseline with a 50% budget (the paper's headline comparison)
    mean_ours = sum(r.adv_ours for r in rows) / len(rows)
    mean_greedy = sum(r.adv_greedy_baseline for r in rows) / len(rows)
    assert mean_ours <= mean_greedy + 0.1
