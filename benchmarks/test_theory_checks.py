"""Benchmark: the paper's theory on synthetic instances.

Covers Prop. 1 (SUBSET-SUM reduction), Prop. 2 (modular relaxation solves
the relaxed problem exactly), Claim 1 + Theorems 1-2 (monotone submodular
attack set functions and greedy's (1−1/e) certificate).
"""

import itertools

import numpy as np

from benchmarks.conftest import run_once
from repro.models.theory_models import ScalarRNN, SimplifiedWCNN
from repro.submodular import (
    check_monotone_exhaustive,
    check_submodular_exhaustive,
    greedy_maximize,
    make_output_increasing_candidates_rnn,
    make_output_increasing_candidates_wcnn,
    rnn_attack_set_function,
    solve_subset_sum_via_attack,
    wcnn_attack_set_function,
)


def test_proposition1_subset_sum_reduction(benchmark):
    instances = [
        ([3, 5, 7, 11], 15, True),
        ([3, 5, 7, 11], 4, False),
        ([2, 4, 8, 16, 32], 42, True),
        ([2, 4, 8, 16, 32], 33, False),
    ]

    def run():
        return [solve_subset_sum_via_attack(nums, t) for nums, t, _ in instances]

    answers = run_once(benchmark, run)
    print("\n=== Prop. 1: SUBSET-SUM via the attack set function ===")
    for (nums, t, expected), got in zip(instances, answers):
        print(f"  numbers={nums} target={t}: solvable={got} (expected {expected})")
        assert got == expected


def test_theorems_submodularity_and_greedy_guarantee(benchmark):
    def run():
        report = []
        for seed in range(4):
            wcnn = SimplifiedWCNN.random_instance(num_filters=3, dim=3, seed=seed)
            v = np.random.default_rng(seed).normal(size=(6, 3))
            cands = make_output_increasing_candidates_wcnn(wcnn, v, k=2, seed=seed)
            f = wcnn_attack_set_function(wcnn, v, cands)
            assert check_monotone_exhaustive(f) is None
            assert check_submodular_exhaustive(f) is None
            greedy = greedy_maximize(f, 3)
            opt = max(
                f.evaluate(c) for r in range(4) for c in itertools.combinations(range(6), r)
            )
            base = f.evaluate(())
            ratio = (greedy.value - base) / max(opt - base, 1e-12)
            report.append(("wcnn", seed, ratio))

            rnn = ScalarRNN.random_instance(dim=3, seed=seed)
            cands = make_output_increasing_candidates_rnn(rnn, v, k=2, seed=seed)
            f = rnn_attack_set_function(rnn, v, cands)
            assert check_monotone_exhaustive(f) is None
            assert check_submodular_exhaustive(f) is None
            greedy = greedy_maximize(f, 3)
            opt = max(
                f.evaluate(c) for r in range(4) for c in itertools.combinations(range(6), r)
            )
            base = f.evaluate(())
            ratio = (greedy.value - base) / max(opt - base, 1e-12)
            report.append(("rnn", seed, ratio))
        return report

    report = run_once(benchmark, run)
    print("\n=== Thm 1/2: exhaustive submodularity + greedy/OPT ratios ===")
    one_minus_inv_e = 1 - 1 / np.e
    for model, seed, ratio in report:
        print(f"  {model} seed={seed}: greedy/OPT = {ratio:.4f}")
        assert ratio >= one_minus_inv_e - 1e-9
