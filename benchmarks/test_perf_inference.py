"""Inference-layer perf regression harness.

Measures the fast inference layer on the cached seed victims and writes
``BENCH_inference.json`` at the repo root (stable schema
``{metric: {"value": ..., "unit": ...}}``) so successive PRs have a perf
trajectory:

1. **Length-bucketed batching** — ``predict_proba`` bucketed vs the legacy
   pad-to-``max_len`` path: identical probabilities (≤ 1e-10), fewer
   padded timesteps, measured docs/sec on the LSTM (the architecture that
   pays per timestep).
2. **Graph-free fused kernels** — the ``repro.nn.inference`` forward vs
   the autograd reference on attack-shaped candidate batches, per
   architecture (parity is enforced at ≤ 1e-12 by the unit tests; here
   only throughput is measured).
3. **Candidate score caching + lazy greedy + fused kernels** — the joint
   greedy attack (Alg. 1 with the objective-greedy word stage) with the
   fast configuration (ScoreCache + CELF ``strategy="lazy"`` + fused
   inference) vs the naive baseline (no cache, full rescans, autograd
   path): the acceptance bars are a ≥2× reduction in paid model forwards
   AND a ≥2× single-thread wall-time speedup, at no loss in attack
   success.
4. **Parallel corpus runner + scoring service** — the same fast attack
   sharded across forked workers via
   :class:`~repro.eval.parallel.ParallelAttackRunner`, with and without
   the shared-memory scoring service
   (:mod:`repro.eval.scoring_service`).  A ``docs_per_second`` series is
   recorded per worker count (1/2/4, service off/on) together with the
   machine's CPU count; on a single-core container the multi-worker
   numbers honestly sit at/below serial, and the regression test
   (``tests/eval/test_bench_scaling.py``) only requires pooled ≥ serial
   when the recorded CPU count can deliver it.  Results must be identical
   to the serial run in every configuration.
5. **Incremental delta scoring** — the same fast joint greedy attack with
   :class:`~repro.nn.delta.DeltaScoreFn` installed: single-edit
   candidates are scored through the windowed-conv delta kernel instead
   of full forwards.  The acceptance bar is a ≥2× further reduction in
   forward FLOP-equivalents (conv-window units) over the CELF fast
   configuration, at byte-identical adversarial documents and success.
"""

import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.parallel import fork_available
from repro.eval.perf import PerfRecorder, write_bench_json
from repro.nn.delta import DeltaScoreFn

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_inference.json"

DATASET = "news"
N_DOCS = 12


def _attack_forwards(ctx, model, docs, targets, strategy, use_cache, fused):
    attack = ctx.make_attack(
        "joint-greedy", model, DATASET, strategy=strategy, use_cache=use_cache
    )
    prev_fused = model.fused_inference
    model.fused_inference = fused
    try:
        start = time.perf_counter()
        results = [attack.attack(d, t) for d, t in zip(docs, targets)]
        elapsed = time.perf_counter() - start
    finally:
        model.fused_inference = prev_fused
    return {
        "queries": sum(r.n_queries for r in results),
        "cache_hits": sum(r.n_cache_hits for r in results),
        "successes": sum(r.success for r in results),
        "seconds": elapsed,
        "adversarial": [tuple(r.adversarial) for r in results],
    }


def _candidate_batch(docs, size=16):
    """Attack-shaped workload: single-word variants of the shortest doc."""
    short = min(docs, key=len)
    variants = [list(short) for _ in range(size)]
    for i, variant in enumerate(variants):
        variant[i % len(variant)] = "<unk>"
    return variants


def _fused_forward_timing(model, variants, rounds=20):
    """(reference seconds, fused seconds) per predict_proba call."""
    prev_perf, model.perf = model.perf, None
    prev_fused = model.fused_inference
    times = {}
    try:
        for fused in (False, True):
            model.fused_inference = fused
            model.predict_proba(variants)  # warm
            start = time.perf_counter()
            for _ in range(rounds):
                model.predict_proba(variants)
            times[fused] = (time.perf_counter() - start) / rounds
    finally:
        model.fused_inference = prev_fused
        model.perf = prev_perf
    return times[False], times[True]


def test_inference_perf(benchmark, ctx):
    def run():
        metrics: dict[str, tuple[float, str]] = {}

        # -- part 1: bucketed batching on the recurrent victim ---------------
        # (a) correctness sweep over the full mixed-length test set
        lstm = ctx.model(DATASET, "lstm")
        docs = ctx.dataset(DATASET).documents("test")
        dense = lstm.predict_proba(docs, bucketed=False)
        recorder = PerfRecorder()
        lstm.perf = recorder
        bucketed = lstm.predict_proba(docs, bucketed=True)
        max_dev = float(np.abs(dense - bucketed).max())
        assert max_dev < 1e-10, "bucketed probabilities must match unbucketed"
        metrics["bucketed_max_abs_deviation"] = (max_dev, "probability")
        metrics["bucketed_mean_padded_length"] = (
            recorder.mean_padded_length(),
            "tokens",
        )
        metrics["unbucketed_padded_length"] = (float(lstm.max_len), "tokens")
        # (b) wall-time on the attack-shaped workload `_score_batch` issues:
        # one batch of single-word variants of one (short) document — they
        # share a length band, so bucketing pads to the document instead of
        # max_len and the LSTM skips the all-padding timesteps
        short = min(docs, key=len)
        variants = [list(short) for _ in range(128)]
        for i, variant in enumerate(variants):
            variant[i % len(variant)] = "<unk>"
        rounds = 5
        lstm.perf = None
        for bucket_flag in (False, True):  # warm both paths
            lstm.predict_proba(variants, bucketed=bucket_flag)
        start = time.perf_counter()
        for _ in range(rounds):
            lstm.predict_proba(variants, bucketed=False)
        t_dense = (time.perf_counter() - start) / rounds
        start = time.perf_counter()
        for _ in range(rounds):
            lstm.predict_proba(variants, bucketed=True)
        t_bucketed = (time.perf_counter() - start) / rounds
        lstm.perf = ctx.perf
        metrics["candidate_batch_docs_per_second_bucketed"] = (
            len(variants) / t_bucketed,
            "docs/s",
        )
        metrics["candidate_batch_docs_per_second_unbucketed"] = (
            len(variants) / t_dense,
            "docs/s",
        )
        metrics["candidate_batch_speedup"] = (t_dense / t_bucketed, "x")

        # -- part 1.5: graph-free fused kernels on candidate batches ---------
        variants16 = _candidate_batch(docs)
        speedups = []
        for arch in ("wcnn", "lstm"):
            model = ctx.model(DATASET, arch)
            t_ref, t_fused = _fused_forward_timing(model, variants16)
            speedups.append(t_ref / t_fused)
            metrics[f"fused_forward_docs_per_second_{arch}"] = (
                len(variants16) / t_fused,
                "docs/s",
            )
            metrics[f"reference_forward_docs_per_second_{arch}"] = (
                len(variants16) / t_ref,
                "docs/s",
            )
        fused_speedup = float(np.mean(speedups))
        metrics["fused_forward_speedup"] = (fused_speedup, "x")

        # -- part 2: fused + cache + lazy greedy on the joint greedy attack --
        # naive = the pre-optimization configuration (full rescans, no
        # cache, autograd forward); fast = the whole fast inference layer
        wcnn = ctx.model(DATASET, "wcnn")
        attack_docs = ctx.dataset(DATASET).documents("test")[:N_DOCS]
        targets = [1 - int(label) for label in wcnn.predict(attack_docs)]
        naive = _attack_forwards(ctx, wcnn, attack_docs, targets, "scan", False, False)
        fast = _attack_forwards(ctx, wcnn, attack_docs, targets, "lazy", True, True)
        reduction = naive["queries"] / max(1, fast["queries"])
        wall_speedup = naive["seconds"] / fast["seconds"]
        metrics["attack_forwards_naive"] = (float(naive["queries"]), "forwards")
        metrics["attack_forwards_fast"] = (float(fast["queries"]), "forwards")
        metrics["attack_forward_reduction"] = (reduction, "x")
        metrics["attack_cache_hits_fast"] = (float(fast["cache_hits"]), "hits")
        metrics["attack_seconds_naive"] = (naive["seconds"], "s")
        metrics["attack_seconds_fast"] = (fast["seconds"], "s")
        metrics["attack_wall_speedup"] = (wall_speedup, "x")
        metrics["attack_success_naive"] = (naive["successes"] / N_DOCS, "rate")
        metrics["attack_success_fast"] = (fast["successes"] / N_DOCS, "rate")

        # -- part 3: parallel corpus runner + scoring service ----------------
        # docs/s series per worker count, scoring service off and on, so
        # BENCH records the actual scaling curve instead of one opaque
        # speedup scalar.  On a 1-CPU container the multi-worker numbers
        # honestly sit at/below serial; the regression test only demands
        # scaling where the hardware can deliver it (cpu_count >= 2).
        attack = ctx.make_attack(
            "joint-greedy", wcnn, DATASET, strategy="lazy", use_cache=True
        )
        cpus = os.cpu_count() or 1
        metrics["parallel_runner_cpu_count"] = (float(cpus), "cpus")
        worker_counts = (1, 2, 4) if fork_available() else (1,)
        reference = None  # serial legacy adversarial docs
        service_reference = None  # service-backed run, any worker count
        for service_on in (False, True):
            for workers in worker_counts:
                runner = ctx.attack_runner(
                    attack, n_workers=workers, scoring_service=service_on
                )
                start = time.perf_counter()
                results = runner.run(attack_docs, targets)
                elapsed = time.perf_counter() - start
                adversarial = [tuple(r.adversarial) for r in results]
                if not service_on:
                    if reference is None:
                        reference = adversarial
                    assert adversarial == reference, (
                        f"pooled run ({workers} workers) must reproduce the "
                        f"serial results exactly"
                    )
                else:
                    if service_reference is None:
                        service_reference = adversarial
                    assert adversarial == service_reference, (
                        f"service-backed runs must be identical at every "
                        f"worker count (diverged at {workers})"
                    )
                    assert adversarial == reference, (
                        "service-backed adversarial documents must match the "
                        "legacy path"
                    )
                suffix = "_service" if service_on else ""
                metrics[f"parallel_runner_docs_per_second_{workers}w{suffix}"] = (
                    N_DOCS / elapsed,
                    "docs/s",
                )
        # -- part 4: incremental delta scoring on the fast joint greedy ------
        # same fast configuration, but single-edit candidates go through
        # the windowed-conv delta kernel; the reduction is measured in
        # forward FLOP-equivalents (conv-window units), the quantity the
        # kernel actually saves, independent of interpreter overhead
        delta_fn = DeltaScoreFn.for_model(wcnn)
        assert delta_fn is not None
        attack_delta = ctx.make_attack(
            "joint-greedy", wcnn, DATASET, strategy="lazy", use_cache=True
        )
        prev_fused = wcnn.fused_inference
        wcnn.fused_inference = True
        attack_delta.set_score_fn(delta_fn)
        try:
            start = time.perf_counter()
            delta_results = [
                attack_delta.attack(d, t) for d, t in zip(attack_docs, targets)
            ]
            delta_seconds = time.perf_counter() - start
        finally:
            attack_delta.set_score_fn(None)
            wcnn.fused_inference = prev_fused
        assert [tuple(r.adversarial) for r in delta_results] == fast["adversarial"], (
            "delta scoring must not change a single adversarial document"
        )
        assert sum(r.success for r in delta_results) == fast["successes"]
        assert sum(r.n_queries for r in delta_results) == fast["queries"]
        stats = delta_fn.stats
        delta_reduction = delta_fn.forward_reduction()
        # fraction of per-candidate window work served from the cached
        # prefix/suffix pooled maxima instead of recomputed
        suffix_fraction = 1.0 - stats["delta_units"] / max(
            stats["delta_units_full"], 1e-12
        )
        metrics["delta_forward_reduction"] = (delta_reduction, "x")
        metrics["delta_suffix_fraction"] = (suffix_fraction, "fraction")
        metrics["delta_candidates"] = (stats["delta_candidates"], "candidates")
        metrics["delta_state_builds"] = (stats["state_builds"], "builds")
        metrics["delta_seconds"] = (delta_seconds, "s")
        metrics["delta_wall_speedup"] = (fast["seconds"] / delta_seconds, "x")

        return metrics, naive, fast, reduction, fused_speedup, wall_speedup, delta_reduction

    metrics, naive, fast, reduction, fused_speedup, wall_speedup, delta_reduction = run_once(
        benchmark, run
    )
    payload = write_bench_json(BENCH_PATH, metrics)

    print(f"\n=== Inference perf ({DATASET}) → {BENCH_PATH.name} ===")
    for name, entry in payload.items():
        print(f"  {name}: {entry['value']:.4g} {entry['unit']}")

    # acceptance bars
    assert reduction >= 2.0, (
        f"cache + lazy greedy must at least halve model forwards on the joint "
        f"greedy attack (got {naive['queries']} → {fast['queries']}, "
        f"{reduction:.2f}x)"
    )
    assert fast["cache_hits"] > 0, "the ScoreCache should serve some hits"
    assert fast["successes"] >= naive["successes"] - 1, (
        "the fast path must not trade away attack success"
    )
    assert payload["candidate_batch_speedup"]["value"] > 1.2, (
        "bucketing should beat pad-to-max_len on candidate batches"
    )
    assert wall_speedup >= 2.0, (
        f"the fast inference layer must at least halve the single-thread "
        f"attack wall time (got {naive['seconds']:.3f}s → "
        f"{fast['seconds']:.3f}s, {wall_speedup:.2f}x)"
    )
    assert fused_speedup > 1.05, (
        f"fused kernels must beat the autograd reference on candidate "
        f"batches (got {fused_speedup:.2f}x)"
    )
    assert delta_reduction >= 2.0, (
        f"delta scoring must at least halve forward FLOP-equivalents over "
        f"the CELF fast configuration (got {delta_reduction:.2f}x)"
    )
