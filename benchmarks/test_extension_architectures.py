"""Extension study: architectural robustness under identical attacks.

The paper attacks WCNN and LSTM; its framework is architecture-agnostic.
This bench trains four architectures (WCNN, LSTM, GRU, a small
self-attention encoder) on the same corpus with the same embeddings and
subjects them to the identical gradient-guided joint attack, asking which
inductive bias is most robust to paraphrase attacks.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import GradientGuidedGreedyAttack
from repro.eval.metrics import evaluate_attack
from repro.models import AttentionClassifier, GRUClassifier, fit
from repro.text import embedding_matrix_for_vocab


def test_architecture_robustness(ctx, benchmark):
    def run():
        dataset = "yelp"
        ds = ctx.dataset(dataset)
        vocab = ctx.vocab(dataset)
        emb = embedding_matrix_for_vocab(vocab, ctx.vectors(dataset), dim=32)
        wp = ctx.word_paraphraser(dataset)

        victims = {
            "wcnn": ctx.model(dataset, "wcnn"),
            "lstm": ctx.model(dataset, "lstm"),
        }
        gru = GRUClassifier(vocab, ctx.settings.max_len, pretrained_embeddings=emb,
                            hidden_dim=ctx.settings.lstm_hidden, seed=0)
        fit(gru, ds.train, ctx.train_config())
        victims["gru"] = gru
        attn = AttentionClassifier(vocab, ctx.settings.max_len, pretrained_embeddings=emb,
                                   num_blocks=2, seed=0)
        fit(attn, ds.train, ctx.train_config())
        victims["attention"] = attn

        rows = []
        for name, model in victims.items():
            attack = GradientGuidedGreedyAttack(model, wp, word_budget_ratio=0.2,
                                                tau=ctx.settings.tau)
            ev = evaluate_attack(model, attack, ds.test, max_examples=30)
            rows.append((name, ev.clean_accuracy, ev.success_rate, ev.mean_word_changes))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Extension: architectural robustness (yelp, Alg. 3, lam_w=20%) ===")
    for name, clean, sr, changes in rows:
        print(f"  {name:10s} clean={clean:6.1%}  attack SR={sr:6.1%}  avg changes={changes:.1f}")
    for name, clean, sr, _ in rows:
        assert clean >= 0.85, name      # all victims are competent
        assert sr <= 1.0
    # every architecture is attackable to some degree
    assert np.mean([sr for _, _, sr, _ in rows]) > 0.1
