"""Root pytest configuration.

The attack-test fixtures (trained victim WCNN, paraphrasers, candidate
documents) are shared by the attacks, eval and defense test packages, so
they are registered once here; all fixtures are session-scoped and lazy.

Hypothesis runs derandomized so the suite is reproducible run-to-run
(property tests explore the same example sets every time).
"""

from hypothesis import settings

settings.register_profile("deterministic", derandomize=True)
settings.load_profile("deterministic")

pytest_plugins = ["tests.fixtures"]
